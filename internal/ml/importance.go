package ml

import "sort"

// FeatureImportance computes mean-decrease-in-impurity importances for the
// forest: each split's Gini gain, weighted by the fraction of training
// samples reaching the node, is credited to its feature and averaged over
// trees. The result is normalised to sum to 1.
//
// The paper argues its OCR/form features capture "the essentials of a
// phishing page"; importances make that argument inspectable (which
// dimensions the forest actually uses).
func (rf *RandomForest) FeatureImportance(nFeatures int) []float64 {
	imp := make([]float64, nFeatures)
	for i := range rf.trees {
		rf.trees[i].accumulateImportance(imp)
	}
	total := 0.0
	for _, v := range imp {
		total += v
	}
	if total > 0 {
		for i := range imp {
			imp[i] /= total
		}
	}
	return imp
}

// accumulateImportance adds this tree's split contributions into imp:
// for each internal node, the sample-weighted Gini decrease
// n/total * (G(node) - nL/n G(left) - nR/n G(right)) is credited to the
// split feature (the classic CART mean-decrease-in-impurity).
func (t *Tree) accumulateImportance(imp []float64) {
	if len(t.nodes) == 0 {
		return
	}
	total := float64(t.nodes[0].samples)
	if total == 0 {
		return
	}
	gini := func(p float64) float64 { return 2 * p * (1 - p) }
	for _, node := range t.nodes {
		if node.feature < 0 || node.feature >= len(imp) {
			continue
		}
		l, r := t.nodes[node.left], t.nodes[node.right]
		n := float64(node.samples)
		if n == 0 {
			continue
		}
		gain := gini(node.prob) -
			float64(l.samples)/n*gini(l.prob) -
			float64(r.samples)/n*gini(r.prob)
		if gain > 0 {
			imp[node.feature] += n / total * gain
		}
	}
}

// TopFeatures returns the indices of the k most important features in
// descending importance order.
func TopFeatures(importances []float64, k int) []int {
	idx := make([]int, len(importances))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return importances[idx[a]] > importances[idx[b]]
	})
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}
