package ml

import (
	"testing"

	"squatphi/internal/simrand"
)

func TestFeatureImportanceFindsSignal(t *testing.T) {
	// Feature 2 fully determines the label; features 0, 1, 3, 4 are noise.
	r := simrand.New(3)
	n := 300
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		row := make([]float64, 5)
		for j := range row {
			row[j] = r.Float64()
		}
		label := 0
		if row[2] > 0.5 {
			label = 1
		}
		X[i], y[i] = row, label
	}
	rf := RandomForest{NTrees: 25, Seed: 7}
	rf.Fit(X, y)
	imp := rf.FeatureImportance(5)
	sum := 0.0
	for _, v := range imp {
		sum += v
	}
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("importances sum to %f, want 1", sum)
	}
	top := TopFeatures(imp, 1)
	if top[0] != 2 {
		t.Fatalf("top feature = %d (importances %v), want 2", top[0], imp)
	}
	if imp[2] < 0.5 {
		t.Fatalf("signal feature importance = %f, want dominant", imp[2])
	}
}

func TestFeatureImportanceEmptyForest(t *testing.T) {
	var rf RandomForest
	imp := rf.FeatureImportance(3)
	for _, v := range imp {
		if v != 0 {
			t.Fatal("untrained forest has non-zero importances")
		}
	}
}

func TestTopFeaturesBounds(t *testing.T) {
	got := TopFeatures([]float64{0.1, 0.7, 0.2}, 10)
	if len(got) != 3 || got[0] != 1 {
		t.Fatalf("TopFeatures = %v", got)
	}
}

func TestImportanceConjunction(t *testing.T) {
	// Label = x0 AND x1 (binary): both features should carry importance,
	// the rest none.
	r := simrand.New(5)
	n := 400
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		row := []float64{float64(r.Intn(2)), float64(r.Intn(2)), r.Float64(), r.Float64()}
		if row[0] == 1 && row[1] == 1 {
			y[i] = 1
		}
		X[i] = row
	}
	rf := RandomForest{NTrees: 25, Seed: 11}
	rf.Fit(X, y)
	imp := rf.FeatureImportance(4)
	if imp[0]+imp[1] < 0.8 {
		t.Fatalf("conjunction features carry %f, want > 0.8 (%v)", imp[0]+imp[1], imp)
	}
}
