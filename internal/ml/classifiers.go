// Package ml implements the machine-learning substrate from scratch: the
// three classifier families the paper evaluates (Naive Bayes, k-nearest
// neighbours, and random forests of CART trees), plus k-fold cross
// validation and the ROC/AUC metrics used in Table 7 and Figure 10.
//
// The paper chose these models "primarily for efficiency considerations
// since the classifier needs to quickly process millions of webpages"
// (§5.2); random forest wins with AUC 0.97. Binary classification only:
// label 1 is phishing (positive), 0 is benign.
package ml

import (
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"squatphi/internal/simrand"
)

// Classifier is a trainable binary classifier producing P(y=1 | x).
type Classifier interface {
	// Fit trains on feature vectors X with labels y in {0, 1}. All rows
	// must have equal length. Fit may retain the slices; callers must not
	// mutate them afterwards.
	Fit(X [][]float64, y []int)
	// PredictProba returns the estimated probability that x is positive.
	PredictProba(x []float64) float64
}

// Predict thresholds PredictProba at 0.5.
func Predict(c Classifier, x []float64) int {
	if c.PredictProba(x) >= 0.5 {
		return 1
	}
	return 0
}

// ---------------------------------------------------------------------------
// Multinomial Naive Bayes
// ---------------------------------------------------------------------------

// NaiveBayes is a multinomial Naive Bayes classifier with Laplace
// smoothing, suited to the non-negative keyword-count embedding.
type NaiveBayes struct {
	// Alpha is the Laplace smoothing constant (default 1).
	Alpha float64

	logPrior  [2]float64
	logProb   [2][]float64
	nFeatures int
}

// Fit estimates class priors and per-feature log probabilities.
func (nb *NaiveBayes) Fit(X [][]float64, y []int) {
	alpha := nb.Alpha
	if alpha <= 0 {
		alpha = 1
	}
	if len(X) == 0 {
		return
	}
	nb.nFeatures = len(X[0])
	var classCount [2]float64
	var featSum [2][]float64
	for c := 0; c < 2; c++ {
		featSum[c] = make([]float64, nb.nFeatures)
	}
	for i, row := range X {
		c := y[i]
		classCount[c]++
		for j, v := range row {
			if v > 0 {
				featSum[c][j] += v
			}
		}
	}
	total := classCount[0] + classCount[1]
	for c := 0; c < 2; c++ {
		nb.logPrior[c] = math.Log((classCount[c] + 1) / (total + 2))
		sum := 0.0
		for _, v := range featSum[c] {
			sum += v
		}
		nb.logProb[c] = make([]float64, nb.nFeatures)
		denom := sum + alpha*float64(nb.nFeatures)
		for j, v := range featSum[c] {
			nb.logProb[c][j] = math.Log((v + alpha) / denom)
		}
	}
}

// PredictProba returns P(y=1 | x) via Bayes' rule in log space.
func (nb *NaiveBayes) PredictProba(x []float64) float64 {
	if nb.nFeatures == 0 {
		return 0.5
	}
	var logLik [2]float64
	for c := 0; c < 2; c++ {
		logLik[c] = nb.logPrior[c]
		for j, v := range x {
			if v > 0 && j < nb.nFeatures {
				logLik[c] += v * nb.logProb[c][j]
			}
		}
	}
	// Softmax of the two log likelihoods.
	m := math.Max(logLik[0], logLik[1])
	p0 := math.Exp(logLik[0] - m)
	p1 := math.Exp(logLik[1] - m)
	return p1 / (p0 + p1)
}

// ---------------------------------------------------------------------------
// K-nearest neighbours
// ---------------------------------------------------------------------------

// KNN is a brute-force k-nearest-neighbours classifier over Euclidean
// distance. Probability is the positive fraction among the k neighbours.
type KNN struct {
	// K is the neighbourhood size (default 5).
	K int

	x [][]float64
	y []int
}

// Fit stores the training set.
func (k *KNN) Fit(X [][]float64, y []int) { k.x, k.y = X, y }

// PredictProba scans the training set for the k nearest points.
func (k *KNN) PredictProba(x []float64) float64 {
	kk := k.K
	if kk <= 0 {
		kk = 5
	}
	if len(k.x) == 0 {
		return 0.5
	}
	if kk > len(k.x) {
		kk = len(k.x)
	}
	type nd struct {
		d float64
		y int
	}
	// Keep the k best in a simple bounded insertion list; k is small.
	best := make([]nd, 0, kk)
	for i, row := range k.x {
		d := sqDist(row, x)
		if len(best) < kk {
			best = append(best, nd{d, k.y[i]})
			sort.Slice(best, func(a, b int) bool { return best[a].d < best[b].d })
			continue
		}
		if d < best[kk-1].d {
			best[kk-1] = nd{d, k.y[i]}
			for j := kk - 1; j > 0 && best[j].d < best[j-1].d; j-- {
				best[j], best[j-1] = best[j-1], best[j]
			}
		}
	}
	pos := 0
	for _, b := range best {
		pos += b.y
	}
	return float64(pos) / float64(len(best))
}

func sqDist(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	s := 0.0
	for i := 0; i < n; i++ {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// ---------------------------------------------------------------------------
// CART decision tree and random forest
// ---------------------------------------------------------------------------

// treeNode is one node of a CART tree stored in a flat slice.
type treeNode struct {
	feature     int     // split feature; -1 for leaves
	threshold   float64 // go left if x[feature] <= threshold
	left, right int32
	prob        float64 // P(y=1) among training samples reaching the node
	samples     int32   // training samples reaching the node
}

// Tree is a single CART decision tree trained with the Gini criterion.
type Tree struct {
	// MaxDepth bounds the tree (default 12).
	MaxDepth int
	// MinSamplesSplit is the minimum node size to attempt a split (default 2).
	MinSamplesSplit int
	// MaxFeatures is the number of features examined per split; <= 0 means
	// all. Random forests set it to sqrt(total features).
	MaxFeatures int
	// Seed drives feature subsampling.
	Seed uint64

	nodes []treeNode
}

// Fit grows the tree on (X, y).
func (t *Tree) Fit(X [][]float64, y []int) {
	t.nodes = t.nodes[:0]
	if len(X) == 0 {
		return
	}
	idx := make([]int, len(X))
	for i := range idx {
		idx[i] = i
	}
	rng := simrand.New(t.Seed).Split("tree")
	t.grow(X, y, idx, 0, rng)
}

func (t *Tree) maxDepth() int {
	if t.MaxDepth <= 0 {
		return 12
	}
	return t.MaxDepth
}

func (t *Tree) minSplit() int {
	if t.MinSamplesSplit < 2 {
		return 2
	}
	return t.MinSamplesSplit
}

// grow builds the subtree for idx and returns its node index.
func (t *Tree) grow(X [][]float64, y []int, idx []int, depth int, rng *simrand.RNG) int32 {
	pos := 0
	for _, i := range idx {
		pos += y[i]
	}
	prob := float64(pos) / float64(len(idx))

	node := int32(len(t.nodes))
	t.nodes = append(t.nodes, treeNode{feature: -1, prob: prob, samples: int32(len(idx))})
	if depth >= t.maxDepth() || len(idx) < t.minSplit() || pos == 0 || pos == len(idx) {
		return node
	}

	feature, threshold, ok := t.bestSplit(X, y, idx, rng)
	if !ok {
		return node
	}
	var left, right []int
	for _, i := range idx {
		if X[i][feature] <= threshold {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		return node
	}
	l := t.grow(X, y, left, depth+1, rng)
	r := t.grow(X, y, right, depth+1, rng)
	t.nodes[node].feature = feature
	t.nodes[node].threshold = threshold
	t.nodes[node].left = l
	t.nodes[node].right = r
	return node
}

// bestSplit finds the Gini-optimal (feature, threshold) over a feature
// subsample, using midpoints between sorted distinct values as candidates.
func (t *Tree) bestSplit(X [][]float64, y []int, idx []int, rng *simrand.RNG) (int, float64, bool) {
	nf := len(X[0])
	features := make([]int, nf)
	for i := range features {
		features[i] = i
	}
	if t.MaxFeatures > 0 && t.MaxFeatures < nf {
		rng.Shuffle(nf, func(i, j int) { features[i], features[j] = features[j], features[i] })
		features = features[:t.MaxFeatures]
	}

	bestGini := math.Inf(1)
	bestFeature, bestThreshold := -1, 0.0
	vals := make([]float64, 0, len(idx))
	for _, f := range features {
		vals = vals[:0]
		for _, i := range idx {
			vals = append(vals, X[i][f])
		}
		sort.Float64s(vals)
		prev := vals[0]
		for _, v := range vals[1:] {
			if v == prev {
				continue
			}
			thr := (prev + v) / 2
			prev = v
			g := giniOf(X, y, idx, f, thr)
			if g < bestGini {
				bestGini, bestFeature, bestThreshold = g, f, thr
			}
		}
	}
	return bestFeature, bestThreshold, bestFeature >= 0
}

// giniOf computes the weighted Gini impurity of splitting idx on (f, thr).
func giniOf(X [][]float64, y []int, idx []int, f int, thr float64) float64 {
	var nL, pL, nR, pR float64
	for _, i := range idx {
		if X[i][f] <= thr {
			nL++
			pL += float64(y[i])
		} else {
			nR++
			pR += float64(y[i])
		}
	}
	gini := func(n, p float64) float64 {
		if n == 0 {
			return 0
		}
		q := p / n
		return 2 * q * (1 - q)
	}
	total := nL + nR
	return nL/total*gini(nL, pL) + nR/total*gini(nR, pR)
}

// PredictProba walks the tree.
func (t *Tree) PredictProba(x []float64) float64 {
	if len(t.nodes) == 0 {
		return 0.5
	}
	n := int32(0)
	for {
		node := t.nodes[n]
		if node.feature < 0 {
			return node.prob
		}
		if node.feature < len(x) && x[node.feature] <= node.threshold {
			n = node.left
		} else {
			n = node.right
		}
	}
}

// RandomForest is a bagged ensemble of CART trees with per-split feature
// subsampling (sqrt of the feature count), the paper's best classifier.
type RandomForest struct {
	// NTrees is the ensemble size (default 50).
	NTrees int
	// MaxDepth bounds each tree (default 12).
	MaxDepth int
	// Seed drives bootstrap sampling and feature subsampling.
	Seed uint64
	// Workers is the number of goroutines Fit trains trees on (<= 0 means
	// GOMAXPROCS). Every tree derives its own RNG from (Seed, tree index),
	// so the fitted ensemble — and therefore every prediction — is
	// identical for any Workers value.
	Workers int

	trees []Tree
}

// Fit trains the ensemble on bootstrap resamples of (X, y), fanning the
// independent trees out over the worker pool.
func (rf *RandomForest) Fit(X [][]float64, y []int) {
	n := rf.NTrees
	if n <= 0 {
		n = 50
	}
	rf.trees = make([]Tree, n)
	if len(X) == 0 {
		return
	}
	maxFeat := int(math.Sqrt(float64(len(X[0]))))
	if maxFeat < 1 {
		maxFeat = 1
	}
	// rng is only ever read (SplitN derives a fresh generator without
	// advancing the parent), so workers can share it without locking.
	rng := simrand.New(rf.Seed).Split("forest")
	fitTree := func(ti int) {
		tr := rng.SplitN(uint64(ti))
		bx := make([][]float64, len(X))
		by := make([]int, len(X))
		for i := range bx {
			j := tr.Intn(len(X))
			bx[i], by[i] = X[j], y[j]
		}
		rf.trees[ti] = Tree{MaxDepth: rf.MaxDepth, MaxFeatures: maxFeat, Seed: tr.Uint64()}
		rf.trees[ti].Fit(bx, by)
	}

	workers := rf.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for ti := range rf.trees {
			fitTree(ti)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				ti := int(next.Add(1)) - 1
				if ti >= n {
					return
				}
				fitTree(ti)
			}
		}()
	}
	wg.Wait()
}

// PredictProba averages the trees' leaf probabilities.
func (rf *RandomForest) PredictProba(x []float64) float64 {
	if len(rf.trees) == 0 {
		return 0.5
	}
	sum := 0.0
	for i := range rf.trees {
		sum += rf.trees[i].PredictProba(x)
	}
	return sum / float64(len(rf.trees))
}

// VoteDetail explains one forest prediction: the averaged probability
// plus the per-tree vote split behind it. Verdict provenance surfaces it
// so an analyst can tell a unanimous flag from a 6-of-10 coin toss.
type VoteDetail struct {
	// Proba is the ensemble probability (identical to PredictProba).
	Proba float64
	// Trees is the ensemble size; VotesFor the number of trees whose leaf
	// probability reaches the 0.5 decision threshold.
	Trees    int
	VotesFor int
	// Margin is the normalised vote margin (VotesFor*2 - Trees)/Trees in
	// [-1, 1]: +1 unanimous positive, -1 unanimous negative.
	Margin float64
}

// PredictVotes walks every tree once and returns both the ensemble
// probability and the vote split. It is PredictProba plus bookkeeping —
// same traversals, same float summation order, so Proba is bit-identical
// to PredictProba(x).
func (rf *RandomForest) PredictVotes(x []float64) VoteDetail {
	if len(rf.trees) == 0 {
		return VoteDetail{Proba: 0.5}
	}
	d := VoteDetail{Trees: len(rf.trees)}
	sum := 0.0
	for i := range rf.trees {
		p := rf.trees[i].PredictProba(x)
		sum += p
		if p >= 0.5 {
			d.VotesFor++
		}
	}
	d.Proba = sum / float64(len(rf.trees))
	d.Margin = float64(2*d.VotesFor-d.Trees) / float64(d.Trees)
	return d
}
