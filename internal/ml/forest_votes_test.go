package ml

import (
	"testing"

	"squatphi/internal/simrand"
)

// TestPredictVotesMatchesPredictProba pins the provenance contract:
// PredictVotes reports the exact ensemble probability (same summation
// order as PredictProba) plus a consistent vote split and margin.
func TestPredictVotesMatchesPredictProba(t *testing.T) {
	r := simrand.New(9)
	const n, dim = 160, 20
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		row := make([]float64, dim)
		for j := range row {
			row[j] = r.NormFloat64()
		}
		if r.Bool(0.5) {
			y[i] = 1
			row[1] += 2
		}
		X[i] = row
	}
	rf := &RandomForest{NTrees: 15, Seed: 3}
	rf.Fit(X, y)

	for i, row := range X {
		d := rf.PredictVotes(row)
		if d.Proba != rf.PredictProba(row) {
			t.Fatalf("row %d: Proba %v != PredictProba %v", i, d.Proba, rf.PredictProba(row))
		}
		if d.Trees != 15 || d.VotesFor < 0 || d.VotesFor > d.Trees {
			t.Fatalf("row %d: impossible vote split %+v", i, d)
		}
		wantMargin := float64(2*d.VotesFor-d.Trees) / float64(d.Trees)
		if d.Margin != wantMargin || d.Margin < -1 || d.Margin > 1 {
			t.Fatalf("row %d: margin %v, want %v in [-1,1]", i, d.Margin, wantMargin)
		}
		// A majority vote must side with the thresholded probability for
		// well-separated rows; at minimum the extremes must agree.
		if d.VotesFor == d.Trees && d.Proba < 0.5 {
			t.Fatalf("row %d: unanimous positive but proba %v", i, d.Proba)
		}
		if d.VotesFor == 0 && d.Proba >= 0.5 {
			t.Fatalf("row %d: unanimous negative but proba %v", i, d.Proba)
		}
	}

	empty := &RandomForest{}
	if d := empty.PredictVotes(X[0]); d.Proba != 0.5 || d.Trees != 0 {
		t.Errorf("empty forest: %+v", d)
	}
}
