package render

import (
	"strconv"
	"strings"

	"squatphi/internal/htmlx"
	"squatphi/internal/simrand"
)

// Options controls page rasterisation.
type Options struct {
	// Width is the viewport width in pixels (default 480).
	Width int
	// MaxHeight bounds the raster height (default 800).
	MaxHeight int
	// Assets maps image src paths to the text content painted inside the
	// image. This models logo images and the "text moved into images"
	// string-obfuscation evasion: the text exists only in pixels.
	Assets map[string]string
	// Perturb applies layout obfuscation with the given generator:
	// randomised margins, spacing, decoration bars, and block reordering.
	// Nil renders the canonical layout.
	Perturb *simrand.RNG
	// NoiseLevel adds per-pixel noise after layout (0 disables).
	NoiseLevel float64
	// NoiseSeed drives the noise pattern when Perturb is nil (captures
	// must be deterministic per page for reproducible experiments).
	NoiseSeed uint64
}

// Screenshot parses src and renders it, the one-call path used by the
// crawler. See RenderPage for rendering an already-extracted page.
func Screenshot(src string, opts Options) *Raster {
	return RenderPage(htmlx.Extract(src), opts)
}

// block is one vertically-stacked layout unit.
type block struct {
	kind string // "title", "heading", "text", "link", "image", "form"
	text string
	form *htmlx.Form
}

// RenderPage rasterises an extracted page: title and headings at 2x scale,
// body text and links at 1x, images as outlined boxes containing their
// asset text, forms as input boxes with placeholder text and a filled
// submit button.
func RenderPage(p *htmlx.Page, opts Options) *Raster {
	width := opts.Width
	if width <= 0 {
		width = 480
	}
	maxH := opts.MaxHeight
	if maxH <= 0 {
		maxH = 800
	}
	// Pages declare their own layout randomisation through a meta tag —
	// the reproduction's stand-in for obfuscated CSS. The renderer (the
	// "browser") honours it without any ground-truth knowledge.
	if opts.Perturb == nil {
		if seedStr, ok := p.Meta["layout-seed"]; ok {
			if seed, err := strconv.ParseUint(seedStr, 10, 64); err == nil && seed != 0 {
				opts.Perturb = simrand.New(seed).Split("page-layout")
			}
		}
	}

	blocks := collectBlocks(p, opts.Assets)

	margin := 8
	gap := 6
	if opts.Perturb != nil {
		margin = 4 + opts.Perturb.Intn(40)
		gap = 3 + opts.Perturb.Intn(18)
		// Layout obfuscation keeps content but reorders non-form blocks.
		if opts.Perturb.Bool(0.5) {
			shuffleKeepingForms(blocks, opts.Perturb)
		}
	}

	ra := NewRaster(width, maxH)
	y := margin
	if opts.Perturb != nil && opts.Perturb.Bool(0.4) {
		// Decorative header band: pure layout change, no text.
		h := 8 + opts.Perturb.Intn(24)
		ra.FillRect(0, y, width, h, 200)
		y += h + gap
	}
	for _, b := range blocks {
		if y >= maxH-GlyphH {
			break
		}
		x := margin
		if opts.Perturb != nil {
			x = margin + opts.Perturb.Intn(30)
		}
		switch b.kind {
		case "title", "heading":
			y = drawWrapped(ra, x, y, b.text, 2, width-margin)
		case "text", "link":
			y = drawWrapped(ra, x, y, b.text, 1, width-margin)
		case "image":
			y = drawImage(ra, x, y, b.text, width-2*margin)
		case "form":
			y = drawForm(ra, x, y, b.form, width-2*margin)
		}
		y += gap
	}

	if opts.NoiseLevel > 0 {
		rng := opts.Perturb
		if rng == nil {
			rng = simrand.New(opts.NoiseSeed | 1)
		}
		ra.AddNoise(rng, opts.NoiseLevel)
	}
	return ra
}

func collectBlocks(p *htmlx.Page, assets map[string]string) []block {
	var blocks []block
	if p.Title != "" {
		blocks = append(blocks, block{kind: "title", text: p.Title})
	}
	for _, h := range p.Headings {
		blocks = append(blocks, block{kind: "heading", text: h})
	}
	for _, img := range p.Images {
		text := assets[img.Src]
		if text == "" {
			text = img.Alt
		}
		blocks = append(blocks, block{kind: "image", text: text})
	}
	for _, t := range p.Paragraphs {
		blocks = append(blocks, block{kind: "text", text: t})
	}
	for _, t := range p.LinkTexts {
		blocks = append(blocks, block{kind: "link", text: t})
	}
	for i := range p.Forms {
		blocks = append(blocks, block{kind: "form", form: &p.Forms[i]})
	}
	return blocks
}

// shuffleKeepingForms permutes blocks but keeps forms after the first
// heading-ish block so the page still reads as a login page to a human.
func shuffleKeepingForms(blocks []block, r *simrand.RNG) {
	r.Shuffle(len(blocks), func(i, j int) { blocks[i], blocks[j] = blocks[j], blocks[i] })
}

// drawWrapped renders word-wrapped text and returns the y after the block.
func drawWrapped(ra *Raster, x, y int, text string, scale, rightEdge int) int {
	words := strings.Fields(text)
	cx := x
	for _, w := range words {
		wWidth := TextWidth(w, scale)
		if cx+wWidth > rightEdge && cx > x {
			cx = x
			y += LineH * scale
		}
		if y >= ra.H {
			return y
		}
		DrawText(ra, cx, y, w, scale)
		cx += wWidth + AdvanceX*scale
	}
	return y + LineH*scale
}

// drawImage renders an image placeholder: an outlined box with the embedded
// text painted inside (the only place that text exists for logo images).
func drawImage(ra *Raster, x, y int, text string, maxW int) int {
	w := TextWidth(text, 2) + 16
	if w < 60 {
		w = 60
	}
	if w > maxW {
		w = maxW
	}
	h := GlyphH*2 + 12
	ra.StrokeRect(x, y, w, h, 100)
	DrawText(ra, x+8, y+6, text, 2)
	return y + h
}

// drawForm renders inputs as outlined boxes with placeholder (or name) text
// inside and submit buttons as filled boxes with inverted-looking labels.
func drawForm(ra *Raster, x, y int, f *htmlx.Form, maxW int) int {
	if f == nil {
		return y
	}
	boxW := maxW * 3 / 4
	if boxW < 120 {
		boxW = 120
	}
	for _, in := range f.Inputs {
		if strings.EqualFold(in.Type, "hidden") {
			continue
		}
		label := in.Placeholder
		if label == "" {
			label = in.Name
		}
		if strings.EqualFold(in.Type, "submit") || in.Value != "" && label == "" {
			label = in.Value
		}
		h := GlyphH + 10
		if strings.EqualFold(in.Type, "submit") {
			// Button: border plus label; paper's OCR reads button labels.
			w := TextWidth(label, 1) + 20
			ra.StrokeRect(x, y, w, h, Ink)
			ra.StrokeRect(x+1, y+1, w-2, h-2, Ink)
			DrawText(ra, x+10, y+5, label, 1)
		} else {
			ra.StrokeRect(x, y, boxW, h, 100)
			DrawText(ra, x+6, y+5, label, 1)
		}
		y += h + 6
	}
	return y
}
