// Package render implements the screenshot substrate: a bitmap font and an
// HTML-subset layout engine that rasterises pages into grayscale images.
//
// The paper drives headless Chrome to screenshot 1.3M pages and extracts
// classifier features from the pixels via OCR, because attackers hide brand
// keywords from the HTML while still displaying them to users (paper §4.2,
// §5.1). This package reproduces that pipeline's essential property: text
// that a page removes from its HTML and paints into images is genuinely
// absent from the markup and present only in the raster, so only the OCR
// path can recover it.
package render

import "squatphi/internal/simrand"

// Pixel intensity conventions: 0 is black ink, 255 is white background.
const (
	Ink        = 0
	Background = 255
)

// Raster is an 8-bit grayscale image.
type Raster struct {
	W, H int
	Pix  []uint8 // row-major, len W*H
}

// NewRaster allocates a white raster.
func NewRaster(w, h int) *Raster {
	pix := make([]uint8, w*h)
	for i := range pix {
		pix[i] = Background
	}
	return &Raster{W: w, H: h, Pix: pix}
}

// At returns the pixel at (x, y); out-of-bounds reads return Background.
func (r *Raster) At(x, y int) uint8 {
	if x < 0 || y < 0 || x >= r.W || y >= r.H {
		return Background
	}
	return r.Pix[y*r.W+x]
}

// Set writes the pixel at (x, y); out-of-bounds writes are ignored.
func (r *Raster) Set(x, y int, v uint8) {
	if x < 0 || y < 0 || x >= r.W || y >= r.H {
		return
	}
	r.Pix[y*r.W+x] = v
}

// Dark reports whether the pixel at (x, y) is closer to ink than background.
func (r *Raster) Dark(x, y int) bool { return r.At(x, y) < 128 }

// FillRect paints a solid rectangle.
func (r *Raster) FillRect(x, y, w, h int, v uint8) {
	for yy := y; yy < y+h; yy++ {
		for xx := x; xx < x+w; xx++ {
			r.Set(xx, yy, v)
		}
	}
}

// StrokeRect paints a 1-pixel rectangle outline.
func (r *Raster) StrokeRect(x, y, w, h int, v uint8) {
	for xx := x; xx < x+w; xx++ {
		r.Set(xx, y, v)
		r.Set(xx, y+h-1, v)
	}
	for yy := y; yy < y+h; yy++ {
		r.Set(x, yy, v)
		r.Set(x+w-1, yy, v)
	}
}

// Clone returns a deep copy.
func (r *Raster) Clone() *Raster {
	out := &Raster{W: r.W, H: r.H, Pix: append([]uint8(nil), r.Pix...)}
	return out
}

// AddNoise flips each pixel to a random intensity with probability p,
// reproducing sensor/compression noise so the OCR engine's error rate is
// non-zero, like Tesseract's ~3% (paper §5.1).
func (r *Raster) AddNoise(rng *simrand.RNG, p float64) {
	for i := range r.Pix {
		if rng.Float64() < p {
			if rng.Bool(0.5) {
				r.Pix[i] = Ink
			} else {
				r.Pix[i] = Background
			}
		}
	}
}

// InkRatio returns the fraction of dark pixels, used by tests and by the
// layout-obfuscation experiments as a cheap content measure.
func (r *Raster) InkRatio() float64 {
	dark := 0
	for _, v := range r.Pix {
		if v < 128 {
			dark++
		}
	}
	if len(r.Pix) == 0 {
		return 0
	}
	return float64(dark) / float64(len(r.Pix))
}
