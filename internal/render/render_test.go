package render

import (
	"testing"

	"squatphi/internal/simrand"
)

func TestRasterBasics(t *testing.T) {
	r := NewRaster(10, 5)
	if r.At(3, 2) != Background {
		t.Fatal("new raster not white")
	}
	r.Set(3, 2, Ink)
	if !r.Dark(3, 2) || r.Dark(4, 2) {
		t.Fatal("Set/Dark broken")
	}
	// Out-of-bounds access must be safe.
	r.Set(-1, -1, Ink)
	r.Set(100, 100, Ink)
	if r.At(-1, 0) != Background || r.At(0, 99) != Background {
		t.Fatal("out-of-bounds At not Background")
	}
}

func TestFillAndStrokeRect(t *testing.T) {
	r := NewRaster(20, 20)
	r.FillRect(5, 5, 4, 4, Ink)
	if !r.Dark(6, 6) || r.Dark(4, 4) {
		t.Fatal("FillRect broken")
	}
	r2 := NewRaster(20, 20)
	r2.StrokeRect(2, 2, 10, 10, Ink)
	if !r2.Dark(2, 2) || !r2.Dark(11, 11) || r2.Dark(5, 5) {
		t.Fatal("StrokeRect broken")
	}
}

func TestClone(t *testing.T) {
	r := NewRaster(4, 4)
	c := r.Clone()
	c.Set(0, 0, Ink)
	if r.Dark(0, 0) {
		t.Fatal("Clone shares pixels")
	}
}

func TestGlyphTableComplete(t *testing.T) {
	// Every letter, digit and listed punctuation must be renderable, and
	// all glyphs must be pairwise distinct so OCR can discriminate them.
	var all []rune
	for c := 'A'; c <= 'Z'; c++ {
		all = append(all, c)
	}
	for c := '0'; c <= '9'; c++ {
		all = append(all, c)
	}
	for _, c := range ".,:;!?@/-_'\"()&+=$*% " {
		all = append(all, c)
	}
	seen := map[Glyph]rune{}
	for _, c := range all {
		g, ok := GlyphFor(c)
		if !ok {
			t.Fatalf("GlyphFor(%q) missing", c)
		}
		if prev, dup := seen[g]; dup {
			t.Fatalf("glyphs %q and %q are identical", prev, c)
		}
		seen[g] = c
	}
}

func TestGlyphForFoldsCase(t *testing.T) {
	lower, ok1 := GlyphFor('a')
	upper, ok2 := GlyphFor('A')
	if !ok1 || !ok2 || lower != upper {
		t.Fatal("lowercase not folded to uppercase glyph")
	}
}

func TestDrawTextAdvance(t *testing.T) {
	r := NewRaster(200, 20)
	end := DrawText(r, 0, 0, "AB", 1)
	if end != 2*AdvanceX {
		t.Fatalf("advance = %d, want %d", end, 2*AdvanceX)
	}
	end = DrawText(r, 0, 10, "AB", 2)
	if end != 4*AdvanceX {
		t.Fatalf("scaled advance = %d", end)
	}
}

func TestDrawTextPaintsInk(t *testing.T) {
	r := NewRaster(100, 20)
	DrawText(r, 0, 0, "HI", 1)
	if r.InkRatio() == 0 {
		t.Fatal("DrawText painted nothing")
	}
	// 'H' leftmost column is full ink.
	for y := 0; y < GlyphH; y++ {
		if !r.Dark(0, y) {
			t.Fatalf("H column missing ink at y=%d", y)
		}
	}
}

func TestScreenshotRendersFormsAndImages(t *testing.T) {
	html := `<html><head><title>Login</title></head><body>
		<h1>Welcome</h1>
		<img src="/logo.png">
		<form><input type="text" name="user" placeholder="Email">
		<input type="password" placeholder="Password">
		<input type="submit" value="Sign In"></form></body></html>`
	ra := Screenshot(html, Options{Assets: map[string]string{"/logo.png": "PayPal"}})
	if ra.InkRatio() < 0.005 {
		t.Fatalf("screenshot nearly empty: ink ratio %f", ra.InkRatio())
	}
}

func TestScreenshotDeterministic(t *testing.T) {
	html := `<h1>Hello</h1><p>World of text</p>`
	a := Screenshot(html, Options{})
	b := Screenshot(html, Options{})
	if a.W != b.W || a.H != b.H {
		t.Fatal("dimensions differ")
	}
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			t.Fatal("renders differ across runs")
		}
	}
}

func TestPerturbChangesLayoutNotEmptiness(t *testing.T) {
	html := `<h1>Account Login</h1><p>Please enter your password to continue using the service</p><a href="/h">help</a>`
	plain := Screenshot(html, Options{})
	pert := Screenshot(html, Options{Perturb: simrand.New(9)})
	if pert.InkRatio() == 0 {
		t.Fatal("perturbed render empty")
	}
	diff := 0
	for i := range plain.Pix {
		if plain.Pix[i] != pert.Pix[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("perturbation changed nothing")
	}
}

func TestNoiseLevel(t *testing.T) {
	html := `<p>some text</p>`
	clean := Screenshot(html, Options{})
	noisy := Screenshot(html, Options{NoiseLevel: 0.05, Perturb: simrand.New(4)})
	diff := 0
	for i := range clean.Pix {
		if clean.Pix[i] != noisy.Pix[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("noise changed nothing")
	}
}

func TestWordWrap(t *testing.T) {
	// A long paragraph must wrap instead of running off the right edge.
	ra := NewRaster(100, 200)
	endY := drawWrapped(ra, 0, 0, "aaaa bbbb cccc dddd eeee ffff", 1, 100)
	if endY <= LineH {
		t.Fatalf("no wrapping occurred: endY = %d", endY)
	}
	// No ink beyond the right edge.
	for y := 0; y < ra.H; y++ {
		for x := 98; x < 100; x++ {
			_ = ra.At(x, y) // bounds safety only
		}
	}
}

func TestHiddenInputsNotRendered(t *testing.T) {
	html := `<form><input type="hidden" name="csrf" value="zz"><input type="submit" value="OK"></form>`
	withHidden := Screenshot(html, Options{})
	html2 := `<form><input type="submit" value="OK"></form>`
	without := Screenshot(html2, Options{})
	d := 0
	for i := range withHidden.Pix {
		if withHidden.Pix[i] != without.Pix[i] {
			d++
		}
	}
	if d != 0 {
		t.Fatal("hidden input affected the raster")
	}
}

func BenchmarkScreenshot(b *testing.B) {
	html := `<html><head><title>PayPal Login</title></head><body><h1>Welcome</h1>
		<p>Enter your account details below to continue to your dashboard</p>
		<form><input type=email placeholder="Email"><input type=password placeholder="Password">
		<input type=submit value="Log In"></form></body></html>`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Screenshot(html, Options{})
	}
}
