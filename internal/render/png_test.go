package render

import (
	"bytes"
	"testing"
)

func TestPNGRoundTrip(t *testing.T) {
	ra := NewRaster(64, 32)
	DrawText(ra, 2, 2, "PNG TEST", 1)
	ra.FillRect(2, 20, 40, 6, 100)

	var buf bytes.Buffer
	if err := ra.WritePNG(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPNG(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.W != ra.W || got.H != ra.H {
		t.Fatalf("dims %dx%d != %dx%d", got.W, got.H, ra.W, ra.H)
	}
	for i := range ra.Pix {
		if got.Pix[i] != ra.Pix[i] {
			t.Fatalf("pixel %d: %d != %d", i, got.Pix[i], ra.Pix[i])
		}
	}
}

func TestReadPNGRejectsGarbage(t *testing.T) {
	if _, err := ReadPNG(bytes.NewReader([]byte("nope"))); err == nil {
		t.Fatal("ReadPNG accepted garbage")
	}
}

func TestImageConversion(t *testing.T) {
	ra := NewRaster(4, 4)
	ra.Set(1, 2, 77)
	img := ra.Image()
	if img.GrayAt(1, 2).Y != 77 {
		t.Fatal("Image() lost pixel value")
	}
}
