package render

import (
	"image"
	"image/png"
	"io"
)

// Image converts the raster to a stdlib grayscale image.
func (r *Raster) Image() *image.Gray {
	img := image.NewGray(image.Rect(0, 0, r.W, r.H))
	copy(img.Pix, r.Pix)
	return img
}

// WritePNG encodes the raster as a PNG, the export used for the paper's
// case-study screenshots (Figure 14).
func (r *Raster) WritePNG(w io.Writer) error {
	return png.Encode(w, r.Image())
}

// ReadPNG decodes a grayscale PNG back into a raster; colour images are
// converted through the standard luminance weights.
func ReadPNG(rd io.Reader) (*Raster, error) {
	img, err := png.Decode(rd)
	if err != nil {
		return nil, err
	}
	b := img.Bounds()
	out := NewRaster(b.Dx(), b.Dy())
	for y := b.Min.Y; y < b.Max.Y; y++ {
		for x := b.Min.X; x < b.Max.X; x++ {
			r16, g16, b16, _ := img.At(x, y).RGBA()
			lum := (299*r16 + 587*g16 + 114*b16) / 1000
			out.Set(x-b.Min.X, y-b.Min.Y, uint8(lum>>8))
		}
	}
	return out, nil
}
