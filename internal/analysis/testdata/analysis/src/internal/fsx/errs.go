// Package fsx exercises the errflow analyzer: discarded errors in the
// storage layer are findings unless the callee is a sanctioned sink.
package fsx

import (
	"bytes"
	"fmt"
	"os"
)

// drop discards os.Remove's error as a bare statement.
func drop(path string) {
	os.Remove(path) //want:errflow
}

// blank discards it via the blank identifier.
func blank(path string) {
	_ = os.Remove(path) //want:errflow
}

// blankPair discards only the error half of a multi-value result.
func blankPair(path string) *os.File {
	f, _ := os.Open(path) //want:errflow
	return f
}

// deferred discards a deferred, non-sanctioned error.
func deferred(path string) {
	defer os.Remove(path) //want:errflow
}

// sanctioned exercises the accepted sinks: teardown idiom names, the
// never-failing bytes writers, and calls with no error result at all.
func sanctioned(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var buf bytes.Buffer
	buf.WriteString("header")
	buf.Write(data)
	f.Sync()
	return nil
}

// fmtScoped pins the fmt exemption to the Fprint family: an Fprintf
// error is only the in-process writer's, but Sscanf's error carries the
// parse outcome and discarding it is a finding.
func fmtScoped(s string, buf *bytes.Buffer) int {
	fmt.Fprintf(buf, "n=%s", s)
	var n int
	fmt.Sscanf(s, "%d", &n) //want:errflow
	return n
}
