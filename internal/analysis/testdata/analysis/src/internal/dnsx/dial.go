// Package dnsx is a transport-analyzer fixture mirroring the import path
// of a transport-layer package (.../internal/dnsx): raw dials are its
// job, so nothing here may be flagged.
package dnsx

import "net"

// Open dials directly; dnsx owns the sockets.
func Open(addr string) (net.Conn, error) {
	return net.Dial("udp", addr)
}
