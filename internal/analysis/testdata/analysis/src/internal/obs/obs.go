// Package obs is a transport-analyzer fixture mirroring the import path
// of the serving seam (.../internal/obs): owning the hardened listener
// is its job, so its net.Listen and http.Server uses must not be
// flagged. Outbound dial primitives are still forbidden here — obs is
// the serving seam, not the transport layer.
package obs

import (
	"net"
	"net/http"
	"time"
)

// Serve binds and serves directly; obs owns the repo's listeners.
func Serve(addr string, h http.Handler) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: h, ReadHeaderTimeout: 5 * time.Second}
	return srv.Serve(ln)
}

// Fetch still may not dial out.
func Fetch(addr string) {
	_, _ = net.Dial("tcp", addr) //want:transport
}
