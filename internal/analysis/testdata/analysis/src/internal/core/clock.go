// Package core is a determinism-analyzer fixture mirroring the import
// path shape of the real scan packages (.../internal/core): wall-clock
// reads, sleeps and unseeded randomness must all be flagged here, while
// seeded simrand-style streams and plain duration arithmetic stay silent.
package core

import (
	"math/rand"
	"time"
)

// Bad exercises every forbidden call form.
func Bad() time.Duration {
	start := time.Now()                //want:determinism
	time.Sleep(time.Millisecond)       //want:determinism
	_ = rand.Intn(10)                  //want:determinism
	rand.Shuffle(3, func(i, j int) {}) //want:determinism
	return time.Since(start)           //want:determinism
}

// Good shows the sanctioned forms: explicitly seeded streams and
// duration constants involve no global clock or global source.
func Good() int {
	r := rand.New(rand.NewSource(1))
	d := 2 * time.Second
	_ = d
	deadline := time.Unix(0, 0).Add(time.Minute)
	_ = deadline
	return r.Intn(10)
}
