// Package serve exercises the lifecycleleak analyzer: every goroutine
// spawned in serving code must be join-able, whether its body is a
// literal or a named function resolved through the call graph.
package serve

import (
	"context"
	"runtime"
	"sync"
)

// Lifecycle mirrors the real serve.Lifecycle: registering any hook on it
// counts as joining the component drain.
type Lifecycle struct{ hooks []func() }

// OnDrain registers f to run during shutdown.
func (l *Lifecycle) OnDrain(f func()) { l.hooks = append(l.hooks, f) }

func work() {}

// leakNaked spawns a goroutine nobody can wait for.
func leakNaked() {
	go func() { //want:lifecycleleak
		work()
	}()
}

// okWaitGroup signals a WaitGroup the spawner can Wait on.
func okWaitGroup(wg *sync.WaitGroup) {
	go func() {
		defer wg.Done()
		work()
	}()
}

// okCtx exits with cancellation.
func okCtx(ctx context.Context, in chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-in:
				_ = v
			}
		}
	}()
}

// okLifecycle registers with the drain.
func okLifecycle(l *Lifecycle) {
	go func() {
		l.OnDrain(work)
		work()
	}()
}

// okRange drains until the spawner closes the channel.
func okRange(in chan int) {
	go func() {
		for v := range in {
			_ = v
		}
	}()
}

// joinedWorker loops until cancellation; spawning it by name is fine
// because the analyzer resolves the body through the call graph.
func joinedWorker(ctx context.Context) {
	<-ctx.Done()
}

func leakyWorker() { work() }

func spawnNamed(ctx context.Context) {
	go joinedWorker(ctx)
	go leakyWorker() //want:lifecycleleak
}

// spawnValue calls through a function value, which cannot be proven
// join-able.
func spawnValue(f func()) {
	go f() //want:lifecycleleak
}

// spawnExternal spawns a body outside the analyzed packages.
func spawnExternal() {
	go runtime.Gosched() //want:lifecycleleak
}
