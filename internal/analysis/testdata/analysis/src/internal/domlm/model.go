// Package domlm is a determinism-analyzer fixture mirroring the import
// path shape of the real brand-language model (.../internal/domlm): its
// trained model bytes and fingerprint are pinned by property tests and
// folded into the matcher fingerprint, so wall-clock reads and unseeded
// randomness must be flagged here just like the scan packages.
package domlm

import (
	"math/rand"
	"time"
)

// BadTrain exercises the forbidden call forms inside a training path.
func BadTrain(labels []string) uint64 {
	seed := time.Now().UnixNano()                //want:determinism
	_ = rand.Int63()                             //want:determinism
	rand.Shuffle(len(labels), func(i, j int) {}) //want:determinism
	return uint64(seed)
}

// GoodTrain shows the sanctioned form: an explicitly seeded stream.
func GoodTrain(labels []string) int {
	r := rand.New(rand.NewSource(42))
	return r.Intn(len(labels) + 1)
}
