// Package rclient is a retryconv-analyzer fixture: raw retry-count
// fields consumed in expressions must be flagged, as must retry.Resolve
// calls with non-positive defaults; resolving first, plumbing copies and
// flag binding must not.
package rclient

import "squatphi/internal/retry"

// Client carries retry-count config fields following the repo convention
// (negative = off, 0 = component default, positive as given).
type Client struct {
	Retries      int
	ProbeRetries int
	Budget       int // not a retry count: never flagged
}

// Bad consumes raw fields and mis-defaults Resolve.
func Bad(c *Client) int {
	n := 0
	for i := 0; i < c.Retries; i++ { //want:retryconv
		n++
	}
	if c.ProbeRetries > 3 { //want:retryconv
		n = 3
	}
	_ = retry.Resolve(c.Retries, 0)  //want:retryconv
	_ = retry.Resolve(c.Retries, -1) //want:retryconv
	return n
}

// Good resolves before consuming; writes, plumbing copies and budget
// comparisons are all fine.
func Good(c *Client) int {
	resolved := retry.Resolve(c.Retries, 2)
	c.Retries = 5
	plumbed := c.ProbeRetries
	_ = plumbed
	if c.Budget > 0 {
		resolved++
	}
	for i := 0; i < resolved; i++ {
		resolved--
	}
	return resolved
}
