// Package hotpath exercises the hotalloc analyzer: allocation patterns
// inside //squat:hot functions are flagged, while the allocation-free
// map-index and comparison conversion forms — and anything in unmarked
// functions — pass.
package hotpath

import (
	"fmt"
	"strings"
)

var index = map[string]int{"paypal": 1}

// classify is the hot-loop shape: the first three conversions compile
// without copying, everything after allocates per call.
//
//squat:hot
func classify(b []byte) int {
	if n, ok := index[string(b)]; ok { // map-index form: no allocation
		return n
	}
	if string(b) == "exact" || "other" < string(b) { // comparison forms: no allocation
		return 1
	}
	key := string(b)                      //want:hotalloc
	raw := []byte(label(b))               //want:hotalloc
	fmt.Sprintf("%d", len(b))             //want:hotalloc
	parts := strings.Split(label(b), ".") //want:hotalloc
	low := strings.ToLower(label(b))      //want:hotalloc
	_, _, _, _ = key, raw, parts, low
	return 0
}

// label is not marked hot, so hotalloc ignores it — but hotpath sees it
// reachable from the hot root classify and flags both the missing
// annotation and every allocation pattern inside.
func label(b []byte) string { //want:hotpath
	s := strings.ToLower(string(b))                     //want:hotpath //want:hotpath
	return fmt.Sprintf("%s.", strings.Split(s, ".")[0]) //want:hotpath //want:hotpath
}
