//go:build neverbuildme

// This file is excluded by its build tag; if the loader ever includes
// it, the undefined symbol below fails the type check loudly.
package constrained

// Tagged must never be loaded.
func Tagged() int { return undefinedOnPurpose }
