// Package constrained exercises the loader's build-constraint handling:
// only this file survives on a default linux/darwin build.
package constrained

// Here is the only symbol the loader should see.
func Here() int { return 1 }
