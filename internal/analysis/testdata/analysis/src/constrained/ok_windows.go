// This file is excluded on any non-windows GOOS by its filename suffix;
// like tagged.go, it fails the type check loudly if ever included.
package constrained

// OnWindows must never be loaded by this repo's test runs.
func OnWindows() int { return undefinedOnPurpose }
