// Package hotroot exercises the hotpath analyzer: reachability from a
// //squat:hot root across static calls, interface dispatch and
// address-taken function values, with //squat:cold as the sanctioned
// boundary where traversal stops.
package hotroot

import (
	"fmt"
	"os"
	"sync"
)

var mu sync.Mutex

// scan is the hot root. Its own body is clean; everything it can reach
// is the analyzer's business.
//
//squat:hot
func scan(rec []byte, d doer) int {
	n := helperA(rec)
	n += d.do(rec)
	f := pick()
	return n + f(rec)
}

// helperA is annotated and clean; the offense sits one frame further
// down.
//
//squat:hot
func helperA(rec []byte) int {
	if len(rec) == 0 {
		return len(spill(rec))
	}
	return helperB(rec)
}

// helperB allocates two frames below the root and carries no annotation.
func helperB(rec []byte) int { //want:hotpath
	s := string(rec) //want:hotpath
	return len(s)
}

// spill is a deliberate boundary: traversal stops here, so the fmt call
// inside is not a finding.
//
//squat:cold
func spill(rec []byte) string {
	return fmt.Sprintf("%x", rec)
}

// doer dispatches through an interface; the analyzer links the call to
// every same-name, same-signature concrete method.
type doer interface {
	do(rec []byte) int
}

type worker struct{}

func (worker) do(rec []byte) int { //want:hotpath
	mu.Lock() //want:hotpath
	defer mu.Unlock()
	return len(rec)
}

// pick hands back an address-taken function; the dynamic call in scan
// resolves to logAndCount by signature.
func pick() func([]byte) int { //want:hotpath
	return logAndCount
}

func logAndCount(rec []byte) int { //want:hotpath
	data, err := os.ReadFile("counts") //want:hotpath
	if err != nil {
		return len(rec)
	}
	return len(data)
}
