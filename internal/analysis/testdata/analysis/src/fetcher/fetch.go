// Package fetcher is a transport-analyzer fixture: a component outside
// the dnsx/faultx/retry transport layer that dials and fetches directly.
// Every raw primitive must be flagged; going through an injected
// *http.Client must not.
package fetcher

import (
	"net"
	"net/http"
	"time"
)

// Bad exercises the forbidden primitives.
func Bad(addr string) {
	_, _ = net.Dial("udp", addr)                     //want:transport
	_, _ = net.DialTimeout("tcp", addr, time.Second) //want:transport
	_, _ = http.Get("http://" + addr)                //want:transport
	_, _ = http.Head("http://" + addr)               //want:transport
	_ = http.DefaultClient                           //want:transport
	d := net.Dialer{Timeout: time.Second}            //want:transport
	_ = d
}

// Good uses an injected client: the transport behind it is the chaos
// harness's to wrap.
func Good(c *http.Client, url string) (int, error) {
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		return 0, err
	}
	resp, err := c.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	return resp.StatusCode, nil
}
