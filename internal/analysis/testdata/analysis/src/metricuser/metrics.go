// Package metricuser is a metricname-analyzer fixture: obs.Registry
// registrations with non-constant or non-lowercase.dotted names must be
// flagged; literal and constant dotted names must not.
package metricuser

import "squatphi/internal/obs"

// goodName is a constant, so it is as stable as a literal.
const goodName = "metricuser.const_name"

// Register exercises good and bad registrations.
func Register(reg *obs.Registry, dyn string) {
	reg.Counter("metricuser.ops")
	reg.Counter(goodName)
	reg.Counter("BadName.Caps")        //want:metricname
	reg.Counter("nodots")              //want:metricname
	reg.Counter(dyn)                   //want:metricname
	reg.Gauge("metricuser.sub." + dyn) //want:metricname
	reg.Gauge("metricuser.depth")
	reg.Histogram("metricuser.fetch_ms", obs.MillisBuckets)
	reg.Histogram("metricuser.has space", nil) //want:metricname
	reg.RegisterFunc("metricuser.values", func() any { return nil })
	reg.RegisterFunc(dyn, func() any { return nil }) //want:metricname
}
