// Package unscoped sits outside the determinism scope (its import path
// has no internal/squat|core|deltascan|ml pair), so its wall-clock reads
// are legal and the determinism analyzer must stay silent.
package unscoped

import "time"

// Uptime may read the clock freely: this package is not a scan path.
func Uptime(start time.Time) time.Duration {
	_ = time.Now()
	return time.Since(start)
}
