// Command leakcmd exercises lifecycleleak's cmd/* scoping: binaries own
// process shutdown, so their goroutines must be join-able too.
package main

import "sync"

func main() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
	go func() { //want:lifecycleleak
		println("background")
	}()
	wg.Wait()
}
