// Package listener is a transport-analyzer fixture for the serving-seam
// rule: a component outside internal/obs that binds its own sockets and
// builds its own servers. Every raw listener form must be flagged;
// handler code (http.Handler values, ServeMux) must not.
package listener

import (
	"net"
	"net/http"
	"time"
)

// Bad exercises the forbidden listener primitives.
func Bad(addr string, h http.Handler) {
	_, _ = net.Listen("tcp", addr)       //want:transport
	_, _ = net.ListenPacket("udp", addr) //want:transport
	lc := net.ListenConfig{}             //want:transport
	_ = lc
	srv := &http.Server{Handler: h, ReadHeaderTimeout: time.Second} //want:transport
	_ = srv.ListenAndServe()
	_ = http.ListenAndServe(addr, h) //want:transport
}

// Good builds handlers only; the listener comes from the obs seam.
func Good(mux *http.ServeMux) http.Handler {
	mux.HandleFunc("/x", func(w http.ResponseWriter, r *http.Request) {})
	return mux
}
