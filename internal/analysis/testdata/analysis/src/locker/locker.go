// Package locker is a lockcheck-analyzer fixture: by-value lock copies
// (parameters, assignments, returns, call arguments) and Lock calls with
// no matching release must be flagged; pointer passing, deferred
// unlocks, explicit unlocks and deferred-closure unlocks must not.
package locker

import "sync"

// Box carries a mutex; copying it is always a bug.
type Box struct {
	mu sync.Mutex
	n  int
}

// BadParam takes the lock-bearing struct by value.
func BadParam(b Box) int { //want:lockcheck
	return b.n
}

// BadNoUnlock locks and never releases.
func BadNoUnlock(b *Box) {
	b.mu.Lock() //want:lockcheck
	b.n++
}

// BadRNoUnlock read-locks and releases the wrong lock kind.
func BadRNoUnlock(b *Box, mu *sync.RWMutex) int {
	mu.RLock() //want:lockcheck
	n := b.n
	mu.Unlock()
	return n
}

// BadCopies copies through assignment and return.
func BadCopies(b *Box) Box {
	c := *b  //want:lockcheck
	return c //want:lockcheck
}

// BadArg passes a lock-bearing value as a call argument.
func BadArg(b *Box) int {
	return BadParam(*b) //want:lockcheck
}

// GoodDefer is the canonical pattern.
func GoodDefer(b *Box) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.n++
}

// GoodExplicit releases explicitly on the straight-line path.
func GoodExplicit(b *Box) int {
	b.mu.Lock()
	n := b.n
	b.mu.Unlock()
	return n
}

// GoodRW pairs RLock with RUnlock.
func GoodRW(mu *sync.RWMutex, b *Box) int {
	mu.RLock()
	defer mu.RUnlock()
	return b.n
}

// GoodDeferredClosure releases inside a deferred closure.
func GoodDeferredClosure(b *Box) {
	b.mu.Lock()
	defer func() {
		b.n++
		b.mu.Unlock()
	}()
	b.n++
}

// GoodPointer passes the lock by pointer everywhere.
func GoodPointer(b *Box) *Box {
	return b
}
