// Package eventuser is an eventname-analyzer fixture: trace.Logger
// emissions with non-constant or non-lowercase.dotted event names must
// be flagged; literal and constant dotted names must not.
package eventuser

import "squatphi/internal/obs/trace"

// goodEvent is a constant, so it is as stable as a literal.
const goodEvent = "eventuser.const_event"

// Emit exercises good and bad emissions.
func Emit(log *trace.Logger, dyn string) {
	log.Info("eventuser.start")
	log.Debug(goodEvent)
	log.Event(trace.LevelWarn, "eventuser.level.event")
	log.Warn("BadCaps.Event")         //want:eventname
	log.Error("nodots")               //want:eventname
	log.Info(dyn)                     //want:eventname
	log.Debug("eventuser.sub." + dyn) //want:eventname
	log.Event(trace.LevelError, dyn)  //want:eventname
	log.Info("eventuser.ok", trace.String("domain", dyn))
}
