// Package brokenpkg fails to type-check on purpose: the loader must
// degrade to a Broken entry for it instead of dying mid-load.
package brokenpkg

// Bad assigns an untyped int to a string.
func Bad() string {
	var s string = 42
	return s
}
