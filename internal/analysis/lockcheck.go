package analysis

import (
	"go/ast"
	"go/types"
)

// LockCheck guards the concurrency hygiene the race/chaos gates depend
// on: a copied mutex is two mutexes that exclude nobody, and a Lock with
// no reachable Unlock deadlocks the sharded scan pools under load.
var LockCheck = &Analyzer{
	Name: "lockcheck",
	Doc: "flag copies of lock-bearing values (sync.Mutex/RWMutex/Once/WaitGroup/" +
		"Cond/Map/Pool, directly or via struct/array fields) through parameters, " +
		"assignments, returns and call arguments, and flag sync Lock/RLock calls " +
		"with no matching deferred or explicit Unlock/RUnlock on the same lock " +
		"in the same function",
	Run: runLockCheck,
}

// syncLockTypes are the sync types that must never be copied after first
// use (each embeds a mutex or a noCopy sentinel).
var syncLockTypes = map[string]bool{
	"Mutex": true, "RWMutex": true, "Once": true, "WaitGroup": true,
	"Cond": true, "Map": true, "Pool": true,
}

// lockPairs maps acquire methods to their matching release.
var lockPairs = map[string]string{"Lock": "Unlock", "RLock": "RUnlock"}

func runLockCheck(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.FuncDecl:
				if node.Recv != nil {
					checkFieldListCopies(pass, node.Recv)
				}
				checkFieldListCopies(pass, node.Type.Params)
				if node.Body != nil {
					checkLockPairing(pass, node.Body)
				}
			case *ast.FuncLit:
				checkFieldListCopies(pass, node.Type.Params)
				checkLockPairing(pass, node.Body)
			case *ast.AssignStmt:
				for _, rhs := range node.Rhs {
					checkValueCopy(pass, rhs, "assignment")
				}
			case *ast.ReturnStmt:
				for _, res := range node.Results {
					checkValueCopy(pass, res, "return")
				}
			case *ast.CallExpr:
				for _, arg := range node.Args {
					checkValueCopy(pass, arg, "call argument")
				}
			}
			return true
		})
	}
	return nil
}

// checkFieldListCopies flags by-value parameters/receivers whose type
// carries a lock.
func checkFieldListCopies(pass *Pass, fields *ast.FieldList) {
	if fields == nil {
		return
	}
	for _, field := range fields.List {
		tv, ok := pass.Info.Types[field.Type]
		if !ok {
			continue
		}
		if name := lockyType(tv.Type, nil); name != "" {
			pass.Reportf(field.Type.Pos(), "by-value parameter type carries sync.%s; a lock must not be copied, pass a pointer", name)
		}
	}
}

// checkValueCopy flags expr when it reads an existing lock-bearing value
// by value (composite literals and calls produce fresh values and are
// fine at this position; their own internals are checked separately).
func checkValueCopy(pass *Pass, expr ast.Expr, context string) {
	e := expr
	for {
		paren, ok := e.(*ast.ParenExpr)
		if !ok {
			break
		}
		e = paren.X
	}
	switch e.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
	default:
		return
	}
	// &x or taking a method value is not a copy of x itself; the parent
	// inspection positions we receive are already the copied operands.
	tv, ok := pass.Info.Types[e]
	if !ok || !tv.IsValue() {
		return
	}
	if name := lockyType(tv.Type, nil); name != "" {
		pass.Reportf(e.Pos(), "%s copies a value carrying sync.%s; a lock must not be copied, use a pointer", context, name)
	}
}

// lockyType reports the sync type name embedded (by value) in t, or "".
// Pointers, slices, maps, channels and interfaces stop the search: they
// share rather than copy.
func lockyType(t types.Type, seen map[types.Type]bool) string {
	if seen == nil {
		seen = map[types.Type]bool{}
	}
	if seen[t] {
		return ""
	}
	seen[t] = true
	switch tt := t.(type) {
	case *types.Named:
		obj := tt.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && syncLockTypes[obj.Name()] {
			return obj.Name()
		}
		return lockyType(tt.Underlying(), seen)
	case *types.Struct:
		for i := 0; i < tt.NumFields(); i++ {
			if name := lockyType(tt.Field(i).Type(), seen); name != "" {
				return name
			}
		}
	case *types.Array:
		return lockyType(tt.Elem(), seen)
	}
	return ""
}

// checkLockPairing flags x.Lock()/x.RLock() statements in body with no
// matching defer x.Unlock()/x.RUnlock() and no later explicit unlock of
// the same lock expression anywhere in the same function body.
func checkLockPairing(pass *Pass, body *ast.BlockStmt) {
	type lockCall struct {
		pos     ast.Node
		key     string // flattened lock expression, e.g. "r.mu"
		release string
	}
	var acquires []lockCall
	releases := map[string][]ast.Node{} // key+method -> call sites
	walkOwnStatements(body, func(stmt ast.Stmt) {
		var call *ast.CallExpr
		deferred := false
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			call, _ = s.X.(*ast.CallExpr)
		case *ast.DeferStmt:
			call, deferred = s.Call, true
		}
		if call == nil {
			return
		}
		if lit, isLit := call.Fun.(*ast.FuncLit); isLit && deferred {
			// Releases inside a deferred closure run at function exit;
			// count them as releases of this function's locks.
			ast.Inspect(lit.Body, func(n ast.Node) bool {
				inner, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := inner.Fun.(*ast.SelectorExpr)
				if !ok || !isSyncLockMethod(pass.Info, sel) {
					return true
				}
				if key, ok := flattenExpr(sel.X); ok {
					if _, isAcquire := lockPairs[sel.Sel.Name]; !isAcquire {
						releases[key+"."+sel.Sel.Name] = append(releases[key+"."+sel.Sel.Name], sel)
					}
				}
				return true
			})
			return
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !isSyncLockMethod(pass.Info, sel) {
			return
		}
		key, ok := flattenExpr(sel.X)
		if !ok {
			return
		}
		method := sel.Sel.Name
		if release, isAcquire := lockPairs[method]; isAcquire && !deferred {
			acquires = append(acquires, lockCall{pos: sel, key: key, release: release})
			return
		}
		releases[key+"."+method] = append(releases[key+"."+method], sel)
	})
	for _, acq := range acquires {
		matched := false
		for _, rel := range releases[acq.key+"."+acq.release] {
			if rel.Pos() > acq.pos.Pos() {
				matched = true
				break
			}
		}
		if !matched {
			pass.Reportf(acq.pos.Pos(), "%s acquired with no matching %s (deferred or explicit) later in the same function", acq.key, acq.release)
		}
	}
}

// walkOwnStatements visits every statement of body, descending into
// nested blocks/if/for/switch/select but NOT into nested function
// literals (which own their locks separately).
func walkOwnStatements(body *ast.BlockStmt, fn func(ast.Stmt)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		if stmt, ok := n.(ast.Stmt); ok {
			fn(stmt)
		}
		return true
	})
}

// isSyncLockMethod reports whether sel resolves to a method declared on
// sync.Mutex or sync.RWMutex (including promoted/embedded forms).
func isSyncLockMethod(info *types.Info, sel *ast.SelectorExpr) bool {
	selection := info.Selections[sel]
	if selection == nil || selection.Kind() != types.MethodVal {
		return false
	}
	fn, ok := selection.Obj().(*types.Func)
	if !ok {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// flattenExpr renders a simple ident/selector chain ("r.mu",
// "c.state.mu") as a string key; anything with calls or indexes is not
// comparable across statements and reports !ok.
func flattenExpr(expr ast.Expr) (string, bool) {
	switch e := expr.(type) {
	case *ast.Ident:
		return e.Name, true
	case *ast.SelectorExpr:
		prefix, ok := flattenExpr(e.X)
		if !ok {
			return "", false
		}
		return prefix + "." + e.Sel.Name, true
	case *ast.ParenExpr:
		return flattenExpr(e.X)
	}
	return "", false
}
