package analysis

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the squatvet JSON golden file")

// sharedLoader hands every test the same loader so the source importer's
// dependency cache is shared (type-checking net/http once, not per test).
var sharedLoader = sync.OnceValues(func() (*Loader, error) {
	root, err := FindModuleRoot(".")
	if err != nil {
		return nil, err
	}
	return NewLoader(root)
})

// loadFixture loads one or more fixture directories under
// testdata/analysis/src with the shared loader.
func loadFixture(t *testing.T, dirs ...string) []*Package {
	t.Helper()
	l, err := sharedLoader()
	if err != nil {
		t.Fatal(err)
	}
	var patterns []string
	for _, d := range dirs {
		patterns = append(patterns, filepath.Join("testdata", "analysis", "src", d))
	}
	pkgs, err := l.Load(patterns...)
	if err != nil {
		t.Fatal(err)
	}
	return pkgs
}

// wantMarkers scans fixture files for //want:<analyzer> markers and
// returns the expected diagnostic multiset keyed "relpath:line".
func wantMarkers(t *testing.T, analyzer string, dirs ...string) map[string]int {
	t.Helper()
	l, err := sharedLoader()
	if err != nil {
		t.Fatal(err)
	}
	marker := "//want:" + analyzer
	want := map[string]int{}
	for _, dir := range dirs {
		full := filepath.Join("testdata", "analysis", "src", dir)
		entries, err := os.ReadDir(full)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			path := filepath.Join(full, e.Name())
			f, err := os.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			abs, _ := filepath.Abs(path)
			rel, err := filepath.Rel(l.Root, abs)
			if err != nil {
				t.Fatal(err)
			}
			scanner := bufio.NewScanner(f)
			for line := 1; scanner.Scan(); line++ {
				n := strings.Count(scanner.Text(), marker)
				if n > 0 {
					want[fmt.Sprintf("%s:%d", filepath.ToSlash(rel), line)] += n
				}
			}
			if err := scanner.Err(); err != nil {
				t.Fatal(err)
			}
			f.Close()
		}
	}
	return want
}

// runFixture runs exactly one analyzer over fixture dirs and compares
// the (file, line) multiset of its findings against the //want markers.
func runFixture(t *testing.T, a *Analyzer, dirs ...string) []Diagnostic {
	t.Helper()
	pkgs := loadFixture(t, dirs...)
	diags, err := Run(pkgs, []*Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int{}
	for _, d := range diags {
		got[fmt.Sprintf("%s:%d", d.Path, d.Line)]++
	}
	want := wantMarkers(t, a.Name, dirs...)
	for key, n := range want {
		if got[key] != n {
			t.Errorf("%s: want %d finding(s) at %s, got %d", a.Name, n, key, got[key])
		}
	}
	for key, n := range got {
		if want[key] == 0 {
			t.Errorf("%s: unexpected finding(s) at %s (%d)", a.Name, key, n)
		}
	}
	return diags
}

func TestDeterminismFixture(t *testing.T) {
	diags := runFixture(t, Determinism, "internal/core", "internal/domlm", "unscoped")
	assertPosition(t, diags, "internal/analysis/testdata/analysis/src/internal/core/clock.go:14:11",
		"wall-clock read time.Now in deterministic scan path; time metric observations must go through obs.Stopwatch")
	assertPosition(t, diags, "internal/analysis/testdata/analysis/src/internal/core/clock.go:15:2",
		"time.Sleep in deterministic scan path; synchronize with channels or sync primitives instead of sleeping")
}

func TestMetricNameFixture(t *testing.T) {
	diags := runFixture(t, MetricName, "metricuser")
	assertPosition(t, diags, "internal/analysis/testdata/analysis/src/metricuser/metrics.go:15:14",
		`metric name "BadName.Caps" is not lowercase.dotted (want at least two [a-z0-9_] segments joined by dots)`)
}

func TestEventNameFixture(t *testing.T) {
	diags := runFixture(t, EventName, "eventuser")
	assertPosition(t, diags, "internal/analysis/testdata/analysis/src/eventuser/events.go:16:11",
		`event name "BadCaps.Event" is not lowercase.dotted (want at least two [a-z0-9_] segments joined by dots)`)
	assertPosition(t, diags, "internal/analysis/testdata/analysis/src/eventuser/events.go:18:11",
		"event name passed to trace.Logger.Info is not a constant string; event identifiers must be stable literals")
}

func TestTransportFixture(t *testing.T) {
	diags := runFixture(t, Transport, "fetcher", "internal/dnsx", "listener", "internal/obs")
	assertPosition(t, diags, "internal/analysis/testdata/analysis/src/fetcher/fetch.go:15:9",
		"direct net.Dial outside the transport layer; open connections through the dnsx/faultx/retry wrappers (e.g. faultx.DialTimeout or a component Dial hook)")
	assertPosition(t, diags, "internal/analysis/testdata/analysis/src/listener/listener.go:15:9",
		"listening socket net.Listen outside the serving layer; bind through obs.Serve so every repo listener carries the hardened timeout and graceful-drain policy")
	assertPosition(t, diags, "internal/analysis/testdata/analysis/src/listener/listener.go:19:10",
		"direct net/http.Server outside the serving layer; build servers with obs.NewServer/obs.Serve so header/read/idle timeouts and graceful shutdown apply")
	assertPosition(t, diags, "internal/analysis/testdata/analysis/src/listener/listener.go:21:6",
		"direct net/http.ListenAndServe outside the serving layer; build servers with obs.NewServer/obs.Serve so header/read/idle timeouts and graceful shutdown apply")
}

func TestRetryConvFixture(t *testing.T) {
	diags := runFixture(t, RetryConv, "rclient")
	assertPosition(t, diags, "internal/analysis/testdata/analysis/src/rclient/rclient.go:26:31",
		"retry.Resolve default 0 is not positive; a component default of <= 0 makes the 0=default convention unsatisfiable")
	assertPosition(t, diags, "internal/analysis/testdata/analysis/src/rclient/rclient.go:27:31",
		"retry.Resolve default -1 is not positive; a component default of <= 0 makes the 0=default convention unsatisfiable")
}

func TestHotAllocFixture(t *testing.T) {
	diags := runFixture(t, HotAlloc, "hotpath")
	assertPosition(t, diags, "internal/analysis/testdata/analysis/src/hotpath/hotpath.go:25:9",
		"allocating conversion string([]byte) in //squat:hot function classify; only the map-index and comparison forms are allocation-free")
	assertPosition(t, diags, "internal/analysis/testdata/analysis/src/hotpath/hotpath.go:26:9",
		"allocating conversion []byte(string) in //squat:hot function classify; only the map-index and comparison forms are allocation-free")
	assertPosition(t, diags, "internal/analysis/testdata/analysis/src/hotpath/hotpath.go:27:2",
		"fmt.Sprintf in //squat:hot function classify allocates on every call; format off the hot path")
	assertPosition(t, diags, "internal/analysis/testdata/analysis/src/hotpath/hotpath.go:28:11",
		"strings.Split in //squat:hot function classify allocates its result; use the append-style byte helpers instead")
	assertPosition(t, diags, "internal/analysis/testdata/analysis/src/hotpath/hotpath.go:29:9",
		"strings.ToLower in //squat:hot function classify allocates its result; use the append-style byte helpers instead")
}

func TestLockCheckFixture(t *testing.T) {
	diags := runFixture(t, LockCheck, "locker")
	assertPosition(t, diags, "internal/analysis/testdata/analysis/src/locker/locker.go:22:2",
		"b.mu acquired with no matching Unlock (deferred or explicit) later in the same function")
	assertPosition(t, diags, "internal/analysis/testdata/analysis/src/locker/locker.go:16:17",
		"by-value parameter type carries sync.Mutex; a lock must not be copied, pass a pointer")
}

func TestHotPathFixture(t *testing.T) {
	diags := runFixture(t, HotPath, "hotroot", "hotpath")
	// The allocating helper sits two frames below the //squat:hot root
	// (scan → helperA → helperB): exactly the gap hotalloc cannot see.
	assertPosition(t, diags, "internal/analysis/testdata/analysis/src/hotroot/hotroot.go:38:6",
		"hotroot.helperB is reachable from //squat:hot root hotroot.helperA but carries neither //squat:hot nor //squat:cold; annotate it so the hot-path contract stays explicit")
	assertPosition(t, diags, "internal/analysis/testdata/analysis/src/hotroot/hotroot.go:39:7",
		"allocating conversion string([]byte) in hotroot.helperB, reachable from //squat:hot root hotroot.helperA; push it behind a //squat:cold boundary or use the byte helpers")
	// Interface dispatch reaches the concrete method, whose lock is not
	// held at the root.
	assertPosition(t, diags, "internal/analysis/testdata/analysis/src/hotroot/hotroot.go:60:2",
		"sync Lock acquired in hotroot.worker.do, reachable from //squat:hot root hotroot.scan and not held at the root; per-record locking breaks the scan hot loop, move it behind a //squat:cold boundary")
	// The address-taken function value resolves by signature, and I/O in
	// it is a finding.
	assertPosition(t, diags, "internal/analysis/testdata/analysis/src/hotroot/hotroot.go:72:15",
		"os.ReadFile called in hotroot.logAndCount, reachable from //squat:hot root hotroot.scan; I/O and logging do not belong on the per-record scan path, move them behind a //squat:cold boundary")
	assertPosition(t, diags, "internal/analysis/testdata/analysis/src/hotpath/hotpath.go:37:6",
		"hotpath.label is reachable from //squat:hot root hotpath.classify but carries neither //squat:hot nor //squat:cold; annotate it so the hot-path contract stays explicit")
}

// TestHotPathRealRepo is the transitive proof the hotalloc baseline used
// to assert by hand: loading the real matcher and everything its hot
// roots can reach, the MatchBytes miss path — and every other
// //squat:hot root in these packages — reaches no allocating, locking or
// I/O-performing callee outside a //squat:cold boundary.
func TestHotPathRealRepo(t *testing.T) {
	l, err := sharedLoader()
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("../squat", "../confusables", "../punycode", "../domlm", "../obs", "../obs/trace")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(pkgs, []*Analyzer{HotPath})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("hot path not clean: %s", d.String())
	}
}

func TestLifecycleLeakFixture(t *testing.T) {
	diags := runFixture(t, LifecycleLeak, "internal/serve", "cmd/leakcmd")
	assertPosition(t, diags, "internal/analysis/testdata/analysis/src/internal/serve/leak.go:23:2",
		"goroutine is not join-able (no sync.WaitGroup signal, <-ctx.Done() wait, channel range, or serve.Lifecycle hook in its body); tie it to the component lifecycle so shutdown can drain it")
	// A named spawn is resolved through the call graph to its body.
	assertPosition(t, diags, "internal/analysis/testdata/analysis/src/internal/serve/leak.go:77:2",
		"goroutine leakyWorker is not join-able (no sync.WaitGroup signal, <-ctx.Done() wait, channel range, or serve.Lifecycle hook in its body); tie it to the component lifecycle so shutdown can drain it")
	assertPosition(t, diags, "internal/analysis/testdata/analysis/src/internal/serve/leak.go:83:2",
		"goroutine calls through a function value, which cannot be proven join-able; spawn a named worker tied to the component lifecycle so shutdown can drain it")
	assertPosition(t, diags, "internal/analysis/testdata/analysis/src/internal/serve/leak.go:88:2",
		"goroutine body Gosched is outside the analyzed packages; wrap the spawn in a join-able worker so shutdown can drain it")
}

func TestErrFlowFixture(t *testing.T) {
	diags := runFixture(t, ErrFlow, "internal/fsx")
	assertPosition(t, diags, "internal/analysis/testdata/analysis/src/internal/fsx/errs.go:13:2",
		"statement discards the error from os.Remove; handle it, return it, or route it through a sanctioned sink (core.degraded counter, log, explicit _ = with justification upstream)")
	assertPosition(t, diags, "internal/analysis/testdata/analysis/src/internal/fsx/errs.go:23:5",
		"error result of os.Open assigned to _; handle it, return it, or route it through a sanctioned sink")
	assertPosition(t, diags, "internal/analysis/testdata/analysis/src/internal/fsx/errs.go:29:8",
		"deferred call discards the error from os.Remove; handle it, return it, or route it through a sanctioned sink (core.degraded counter, log, explicit _ = with justification upstream)")
	// The fmt exemption is Fprint-scoped: Sscanf's parse error is a
	// finding, Fprintf to an in-process writer is not.
	assertPosition(t, diags, "internal/analysis/testdata/analysis/src/internal/fsx/errs.go:53:2",
		"statement discards the error from fmt.Sscanf; handle it, return it, or route it through a sanctioned sink (core.degraded counter, log, explicit _ = with justification upstream)")
	for _, d := range diags {
		if strings.Contains(d.Message, "Fprintf") {
			t.Errorf("fmt.Fprintf must stay a sanctioned sink, got: %s", d.String())
		}
	}
}

// workerFixtureDirs keeps the determinism test off the heavyweight
// net/http-importing fixtures: these dirs exercise every analyzer that
// has cross-package state while importing only small stdlib packages.
var workerFixtureDirs = []string{
	"hotroot", "hotpath", "internal/serve", "internal/fsx", "cmd/leakcmd", "constrained", "locker",
}

// TestWorkersByteIdentical runs the full pipeline — load, call graph,
// every analyzer, render — at 1 and 8 workers with fresh loaders and
// requires byte-identical text and JSON output.
func TestWorkersByteIdentical(t *testing.T) {
	render := func(workers int) (string, string) {
		t.Helper()
		root, err := FindModuleRoot(".")
		if err != nil {
			t.Fatal(err)
		}
		l, err := NewLoader(root)
		if err != nil {
			t.Fatal(err)
		}
		l.Workers = workers
		var patterns []string
		for _, d := range workerFixtureDirs {
			patterns = append(patterns, filepath.Join("testdata", "analysis", "src", d))
		}
		pkgs, err := l.Load(patterns...)
		if err != nil {
			t.Fatal(err)
		}
		diags, err := Run(pkgs, All())
		if err != nil {
			t.Fatal(err)
		}
		var text, js strings.Builder
		if err := RenderText(&text, diags); err != nil {
			t.Fatal(err)
		}
		if err := RenderJSON(&js, diags); err != nil {
			t.Fatal(err)
		}
		return text.String(), js.String()
	}
	text1, js1 := render(1)
	text8, js8 := render(8)
	if text1 != text8 {
		t.Errorf("text output differs between 1 and 8 workers:\n-- 1:\n%s-- 8:\n%s", text1, text8)
	}
	if js1 != js8 {
		t.Errorf("JSON output differs between 1 and 8 workers")
	}
	if text1 == "" {
		t.Error("determinism test rendered no findings; fixture set is too weak")
	}
}

// assertPosition requires a diagnostic at exactly path:line:col with the
// given message.
func assertPosition(t *testing.T, diags []Diagnostic, pos, message string) {
	t.Helper()
	for _, d := range diags {
		if fmt.Sprintf("%s:%d:%d", d.Path, d.Line, d.Col) == pos && d.Message == message {
			return
		}
	}
	t.Errorf("no diagnostic at %s with message %q; got:", pos, message)
	for _, d := range diags {
		t.Errorf("  %s", d.String())
	}
}

// TestJSONGolden pins the full-suite JSON output over the fixture tree
// byte-for-byte (regenerate with -update).
func TestJSONGolden(t *testing.T) {
	l, err := sharedLoader()
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load(filepath.Join("testdata", "analysis", "src") + "/...")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(pkgs, All())
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(diags); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "golden_squatvet.json")
	if *update {
		if err := os.WriteFile(golden, []byte(buf.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d findings)", golden, len(diags))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/analysis -run TestJSONGolden -update` to create it)", err)
	}
	if buf.String() != string(want) {
		t.Errorf("JSON output differs from %s (regenerate with -update):\ngot:\n%s", golden, buf.String())
	}
}

func TestExpandSkipsTestdataAndHidden(t *testing.T) {
	l, err := sharedLoader()
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := l.expand([]string{"."})
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) != 1 || filepath.Base(dirs[0]) != "analysis" {
		t.Fatalf("expand(.) = %v, want just the analysis dir", dirs)
	}
	dirs, err = l.expand([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dirs {
		if strings.Contains(d, "testdata") {
			t.Errorf("expand(./...) included testdata dir %s", d)
		}
	}
	// Explicitly naming a testdata subtree must be honoured.
	dirs, err = l.expand([]string{"testdata/analysis/src/..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) < 6 {
		t.Errorf("explicit testdata expansion found only %v", dirs)
	}
	sort.Strings(dirs)
	if !sort.StringsAreSorted(dirs) {
		t.Error("expand output not sorted")
	}
}

func TestByName(t *testing.T) {
	all, err := ByName("")
	if err != nil || len(all) != 10 {
		t.Fatalf("ByName(\"\") = %d analyzers, err %v; want 10", len(all), err)
	}
	if intra := Intraprocedural(all); len(intra) != 8 {
		t.Fatalf("Intraprocedural(All()) = %d analyzers, want 8 (hotpath and lifecycleleak dropped)", len(intra))
	}
	sub, err := ByName("determinism, lockcheck")
	if err != nil || len(sub) != 2 || sub[0] != Determinism || sub[1] != LockCheck {
		t.Fatalf("ByName subset wrong: %v, %v", sub, err)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("ByName(nosuch) should fail")
	}
}

func TestPathHasInternal(t *testing.T) {
	cases := []struct {
		path, name string
		want       bool
	}{
		{"squatphi/internal/core", "core", true},
		{"squatphi/internal/analysis/testdata/analysis/src/internal/core", "core", true},
		{"squatphi/internal/corex", "core", false},
		{"squatphi/core", "core", false},
		{"internal/core", "core", true},
		{"squatphi/internal", "internal", false},
	}
	for _, c := range cases {
		if got := pathHasInternal(c.path, c.name); got != c.want {
			t.Errorf("pathHasInternal(%q, %q) = %v, want %v", c.path, c.name, got, c.want)
		}
	}
}

func TestDiagnosticStringAndKey(t *testing.T) {
	d := Diagnostic{Analyzer: "determinism", Path: "internal/core/x.go", Line: 3, Col: 7, Message: "m"}
	if got := d.String(); got != "internal/core/x.go:3:7: [determinism] m" {
		t.Errorf("String() = %q", got)
	}
	if got := d.Key(); got != "determinism\tinternal/core/x.go\tm" {
		t.Errorf("Key() = %q", got)
	}
}
