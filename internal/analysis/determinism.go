package analysis

import (
	"go/ast"
)

// determinismScope lists the packages whose outputs are pinned
// byte-for-byte by the golden pipeline test and the serial/parallel/delta
// equivalence suites (PR 2/4). Code in these packages must not observe
// the wall clock or unseeded randomness: any such read could leak into a
// verdict, a sort order or a cache key and silently break equivalence.
// domlm joined in PR 9: its trained model bytes and fingerprint are pinned
// by the property suite and folded into the matcher fingerprint, so any
// nondeterminism there invalidates delta-scan caches at random.
var determinismScope = []string{"squat", "core", "deltascan", "ml", "domlm"}

// globalRandFuncs are the math/rand package-level functions that draw
// from the process-global, unseeded source.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
}

// Determinism enforces the byte-identical-equivalence invariant from
// PR 2/4 on the scan/score/deltascan/ml packages.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "forbid wall-clock reads (time.Now/time.Since), time.Sleep and unseeded " +
		"math/rand in the deterministic scan/score packages (internal/squat, " +
		"internal/core, internal/deltascan, internal/ml, internal/domlm); metric " +
		"timing goes through obs.Stopwatch and randomness through internal/simrand",
	Run: runDeterminism,
}

func runDeterminism(pass *Pass) error {
	scoped := false
	for _, name := range determinismScope {
		if pathHasInternal(pass.ImportPath, name) {
			scoped = true
			break
		}
	}
	if !scoped {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			pkgPath, name, sel, ok := qualifiedSel(pass.Info, n)
			if !ok {
				return true
			}
			switch pkgPath {
			case "time":
				switch name {
				case "Now", "Since":
					pass.Reportf(sel.Pos(), "wall-clock read time.%s in deterministic scan path; time metric observations must go through obs.Stopwatch", name)
				case "Sleep":
					pass.Reportf(sel.Pos(), "time.Sleep in deterministic scan path; synchronize with channels or sync primitives instead of sleeping")
				}
			case "math/rand":
				if globalRandFuncs[name] {
					pass.Reportf(sel.Pos(), "unseeded math/rand.%s (process-global source) in deterministic scan path; derive a stream from internal/simrand", name)
				}
			case "math/rand/v2":
				pass.Reportf(sel.Pos(), "math/rand/v2.%s in deterministic scan path (v2 global functions are randomly seeded); derive a stream from internal/simrand", name)
			}
			return true
		})
	}
	return nil
}
