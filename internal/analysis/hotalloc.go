package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// hotAllocStrings lists strings-package helpers that always allocate
// their result. The hot path has append-style byte equivalents for each
// (internal/confusables.AppendSkeleton, squat's appendNormalized and
// splitETLDAt); reaching for the strings form re-introduces the per-record
// garbage the byte matcher exists to avoid.
var hotAllocStrings = map[string]bool{
	"Split": true, "SplitN": true, "SplitAfter": true, "Fields": true,
	"ToLower": true, "ToUpper": true, "Map": true, "Replace": true,
	"ReplaceAll": true, "Repeat": true, "Join": true,
}

// HotAlloc enforces the zero-allocations-per-record contract of the scan
// hot loop (the tentpole of the paper-scale scan: BenchmarkMatchMiss and
// the bench-check make target gate it dynamically; this analyzer pins the
// same invariant statically, at the pattern level).
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: "forbid allocation patterns in functions marked //squat:hot: " +
		"string([]byte) / []byte(string) conversions outside the allocation-free " +
		"map-index and comparison forms, fmt.* calls, and allocating strings " +
		"helpers (Split, ToLower, ...); the miss path's 0 allocs/op contract " +
		"(BenchmarkMatchMiss, make bench-check) depends on these staying out " +
		"of the hot loop. Known-rare allocations (hit-time, error paths) are " +
		"accepted with a justification in squatvet.baseline",
	Run: runHotAlloc,
}

func runHotAlloc(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotMarked(fd) {
				continue
			}
			checkHotFunc(pass, fd)
		}
	}
	return nil
}

// isHotMarked reports whether the function's doc comment carries the
// //squat:hot directive. Directives survive in Doc.List even though
// go/doc strips them from the rendered text.
func isHotMarked(fd *ast.FuncDecl) bool { return hasDirective(fd, "//squat:hot") }

// isColdMarked reports the //squat:cold directive: a deliberate hot-path
// boundary (hit-time, error-path or sampled code) where rare-path
// allocation is accepted and hotpath's transitive traversal stops.
func isColdMarked(fd *ast.FuncDecl) bool { return hasDirective(fd, "//squat:cold") }

func hasDirective(fd *ast.FuncDecl, directive string) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == directive {
			return true
		}
	}
	return false
}

// checkHotFunc walks one hot function body with a parent stack, so
// conversions can be judged by the expression position they appear in.
func checkHotFunc(pass *Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if conv, isConv := allocConversion(pass.Info, call); isConv {
			if !allocFreeContext(stack, call) {
				pass.Reportf(call.Pos(), "allocating conversion %s in //squat:hot function %s; only the map-index and comparison forms are allocation-free", conv, name)
			}
			return true
		}
		if pkgPath, selName, _, ok := qualifiedSel(pass.Info, call.Fun); ok {
			switch {
			case pkgPath == "fmt":
				pass.Reportf(call.Pos(), "fmt.%s in //squat:hot function %s allocates on every call; format off the hot path", selName, name)
			case pkgPath == "strings" && hotAllocStrings[selName]:
				pass.Reportf(call.Pos(), "strings.%s in //squat:hot function %s allocates its result; use the append-style byte helpers instead", selName, name)
			}
		}
		return true
	})
}

// allocConversion reports whether call is a string<->[]byte conversion,
// the two directions that copy their operand. Conversions of generic
// type-parameter operands are not resolved (their underlying type is the
// constraint interface); the dynamic gate catches what this misses.
func allocConversion(info *types.Info, call *ast.CallExpr) (string, bool) {
	if len(call.Args) != 1 {
		return "", false
	}
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return "", false
	}
	from := info.TypeOf(call.Args[0])
	if from == nil {
		return "", false
	}
	switch {
	case isString(tv.Type) && isByteSlice(from):
		return "string([]byte)", true
	case isByteSlice(tv.Type) && isString(from):
		return "[]byte(string)", true
	}
	return "", false
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.String
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint8
}

// allocFreeContext reports whether the conversion at the top of stack
// sits in a position the compiler is guaranteed to compile without
// copying: a map index (m[string(b)]) or an operand of a string
// comparison (string(b) == s).
func allocFreeContext(stack []ast.Node, call *ast.CallExpr) bool {
	if len(stack) < 2 {
		return false
	}
	switch parent := stack[len(stack)-2].(type) {
	case *ast.IndexExpr:
		return parent.Index == call
	case *ast.BinaryExpr:
		switch parent.Op {
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
			return parent.X == call || parent.Y == call
		}
	}
	return false
}
