package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Package is one loaded, type-checked package (or the external _test
// package of a directory, loaded as its own Package).
type Package struct {
	// Dir is the absolute directory the package was loaded from.
	Dir string
	// ImportPath is the directory's import path within the module. The
	// external test package of a directory shares its directory's import
	// path; the two are distinguished by Types.Name().
	ImportPath string
	// Files are the parsed files that were type-checked together.
	Files []*ast.File
	// Types and Info are the go/types results for Files.
	Types *types.Package
	Info  *types.Info

	loader *Loader
}

// Loader locates, parses and type-checks packages of the enclosing
// module using only the standard library: go/build via the go/importer
// "source" importer for dependencies, go/parser + go/types for the
// packages under analysis. Test files are included, so invariants are
// enforced on test code too (PR 4 replaced timing sleeps in tests with
// synchronization precisely because test determinism matters).
type Loader struct {
	// Root is the module root (the directory containing go.mod); import
	// paths and diagnostic paths are derived relative to it.
	Root string
	// Module is the module path from go.mod.
	Module string
	// Tests selects whether _test.go files are loaded (driver default:
	// true).
	Tests bool
	// Workers bounds the number of directories parsed and type-checked
	// concurrently (<= 1 means serial). Results are merged in directory
	// order, so the loaded package list — and every diagnostic derived
	// from it — is byte-identical at any worker count.
	Workers int

	fset *token.FileSet
	imp  *lockedImporter
}

// lockedImporter serializes a types.Importer and consults the loader's
// own already-checked packages first. The first half makes the parallel
// loader sound (the go/importer source importer memoizes per-path results
// but is not safe for concurrent use, while token.FileSet and concurrent
// types.Config.Check calls for *different* packages are). The second half
// is what makes the call graph possible: when squat imports obs, the
// importer returns the *same* *types.Package the driver loaded for obs,
// so a *types.Func seen at a call site in squat is pointer-identical to
// the one defined in obs and cross-package edges resolve — and each
// module package is type-checked exactly once instead of once per
// importer.
type lockedImporter struct {
	mu      sync.Mutex
	imp     types.Importer
	checked map[string]*types.Package
}

func (li *lockedImporter) register(path string, pkg *types.Package) {
	li.mu.Lock()
	defer li.mu.Unlock()
	li.checked[path] = pkg
}

func (li *lockedImporter) Import(path string) (*types.Package, error) {
	return li.ImportFrom(path, "", 0)
}

func (li *lockedImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	li.mu.Lock()
	defer li.mu.Unlock()
	if pkg := li.checked[path]; pkg != nil {
		return pkg, nil
	}
	if from, ok := li.imp.(types.ImporterFrom); ok {
		return from.ImportFrom(path, dir, mode)
	}
	return li.imp.Import(path)
}

// NewLoader builds a loader for the module rooted at root (a directory
// containing go.mod).
func NewLoader(root string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	mod, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Root:   abs,
		Module: mod,
		Tests:  true,
		fset:   fset,
		imp: &lockedImporter{
			imp:     importer.ForCompiler(fset, "source", nil),
			checked: map[string]*types.Package{},
		},
	}, nil
}

// FindModuleRoot walks upward from dir to the nearest directory
// containing go.mod.
func FindModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found above %s", abs)
		}
		d = parent
	}
}

// modulePath extracts the module path from a go.mod file.
func modulePath(file string) (string, error) {
	data, err := os.ReadFile(file)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("%s: no module directive", file)
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Broken records a directory that failed to parse or type-check during a
// tolerant load, so the driver can degrade instead of dying.
type Broken struct {
	// Dir is the absolute directory that failed.
	Dir string
	// ImportPath is the directory's import path ("" when even that could
	// not be derived).
	ImportPath string
	// Err is the parse or type-check failure.
	Err error
}

// Load expands the given package patterns (a directory, or a directory
// followed by /... for the subtree rooted there; both relative to the
// process working directory) and returns the type-checked packages.
// Directories named testdata, vendor, or starting with "." or "_" are
// skipped during subtree expansion but are honoured when named
// explicitly, so fixture trees can be loaded on purpose without ever
// polluting a ./... run. Any parse or type-check failure aborts the load.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	pkgs, broken, err := l.LoadAll(patterns...)
	if err != nil {
		return nil, err
	}
	if len(broken) > 0 {
		return nil, broken[0].Err
	}
	return pkgs, nil
}

// LoadAll is the tolerant form of Load: directories that fail to parse
// or type-check are returned as Broken entries instead of aborting, so
// the caller can still run intraprocedural analyzers over the healthy
// packages (the whole-repo call graph, by contrast, needs every package
// and must be skipped on a partial load).
//
// Loading runs in two phases over a pool of Workers goroutines. First
// every directory is parsed (concurrently — token.FileSet is safe) and
// its module-internal imports collected; then directories are
// type-checked in dependency waves, so that by the time a package is
// checked every module package it imports has already been checked and
// registered with the importer. That ordering is what gives the whole
// load a single type universe (see lockedImporter). Results are merged
// in directory order, so the package list — and every diagnostic derived
// from it — is identical at any worker count.
func (l *Loader) LoadAll(patterns ...string) ([]*Package, []Broken, error) {
	dirs, err := l.expand(patterns)
	if err != nil {
		return nil, nil, err
	}
	n := len(dirs)
	workers := l.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	runPool := func(count int, task func(int)) {
		if workers <= 1 || count <= 1 {
			for i := 0; i < count; i++ {
				task(i)
			}
			return
		}
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= count {
						return
					}
					task(i)
				}
			}()
		}
		wg.Wait()
	}

	// Phase 1: parse everything.
	parsed := make([]parsedDir, n)
	runPool(n, func(i int) { parsed[i] = l.parseDir(dirs[i]) })

	// Dependency edges among the loaded directories (imports of packages
	// outside the load go through the source importer as before).
	idxByPath := make(map[string]int, n)
	for i := range parsed {
		if parsed[i].err == nil {
			idxByPath[parsed[i].importPath] = i
		}
	}
	unmet := make([]map[int]bool, n)
	dependents := make([][]int, n)
	for i := range parsed {
		unmet[i] = map[int]bool{}
		for p := range parsed[i].deps {
			if j, ok := idxByPath[p]; ok && j != i {
				unmet[i][j] = true
			}
		}
	}
	for i := range parsed {
		for j := range unmet[i] {
			dependents[j] = append(dependents[j], i)
		}
	}

	// Phase 2: type-check in waves (Kahn's algorithm, one parallel pool
	// per wave). A wave is every not-yet-checked directory whose loaded
	// dependencies are all done; module dependency chains are shallow, so
	// the big leaf wave carries most of the parallelism.
	loaded := make([][]*Package, n)
	errs := make([]error, n)
	checked := make([]bool, n)
	for {
		var wave []int
		for i := range parsed {
			if !checked[i] && len(unmet[i]) == 0 {
				wave = append(wave, i)
			}
		}
		if len(wave) == 0 {
			break
		}
		runPool(len(wave), func(k int) {
			i := wave[k]
			loaded[i], errs[i] = l.checkDir(parsed[i])
		})
		for _, i := range wave {
			checked[i] = true
			for _, j := range dependents[i] {
				delete(unmet[j], i)
			}
		}
	}
	// Import cycles cannot occur in valid Go, but a broken tree might
	// contain one: check the leftovers serially rather than deadlocking.
	for i := range parsed {
		if !checked[i] {
			loaded[i], errs[i] = l.checkDir(parsed[i])
		}
	}

	var pkgs []*Package
	var broken []Broken
	for i, dir := range dirs {
		if errs[i] != nil {
			importPath, _ := l.importPathFor(dir)
			broken = append(broken, Broken{Dir: dir, ImportPath: importPath, Err: errs[i]})
			continue
		}
		pkgs = append(pkgs, loaded[i]...)
	}
	return pkgs, broken, nil
}

func (l *Loader) expand(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive, pat = true, rest
		}
		if pat == "" || pat == "." {
			pat = "."
		}
		base, err := filepath.Abs(pat)
		if err != nil {
			return nil, err
		}
		if fi, err := os.Stat(base); err != nil || !fi.IsDir() {
			return nil, fmt.Errorf("package pattern %q: not a directory", pat)
		}
		if !recursive {
			add(base)
			continue
		}
		err = filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			if path != base && skipDir(d.Name()) {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func skipDir(name string) bool {
	return name == "testdata" || name == "vendor" ||
		strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

// importPathFor maps a directory to its import path within the module.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.Module, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("directory %s is outside module root %s", dir, l.Root)
	}
	return l.Module + "/" + filepath.ToSlash(rel), nil
}

// parsedDir is one directory after the parse phase: its files split into
// the primary package (non-test files plus in-package test files) and
// the external _test package, and the set of module-internal packages
// they import.
type parsedDir struct {
	dir        string
	importPath string
	prim       []*ast.File
	xtest      []*ast.File
	deps       map[string]bool
	err        error
}

// parseDir parses one directory's files, honouring build constraints.
func (l *Loader) parseDir(dir string) parsedDir {
	pd := parsedDir{dir: dir}
	pd.importPath, pd.err = l.importPathFor(dir)
	if pd.err != nil {
		return pd
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		pd.err = err
		return pd
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		isTest := strings.HasSuffix(name, "_test.go")
		if isTest && !l.Tests {
			continue
		}
		// Honour build constraints (//go:build lines and GOOS/GOARCH file
		// suffixes) for the current platform, exactly as the go tool would:
		// e.g. snapfmt's mmap_linux.go / mmap_other.go pair must never be
		// type-checked together.
		if match, err := build.Default.MatchFile(dir, name); err != nil {
			pd.err = err
			return pd
		} else if !match {
			continue
		}
		file, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			pd.err = err
			return pd
		}
		if isTest && strings.HasSuffix(file.Name.Name, "_test") {
			pd.xtest = append(pd.xtest, file)
		} else {
			pd.prim = append(pd.prim, file)
		}
	}
	pd.deps = map[string]bool{}
	for _, files := range [][]*ast.File{pd.prim, pd.xtest} {
		for _, f := range files {
			for _, imp := range f.Imports {
				p := strings.Trim(imp.Path.Value, `"`)
				if p == l.Module || strings.HasPrefix(p, l.Module+"/") {
					pd.deps[p] = true
				}
			}
		}
	}
	return pd
}

// checkDir type-checks one parsed directory: the primary package (which
// is then registered with the importer, so later packages see this exact
// *types.Package) and, when present, the external _test package.
func (l *Loader) checkDir(pd parsedDir) ([]*Package, error) {
	if pd.err != nil {
		return nil, pd.err
	}
	var pkgs []*Package
	if len(pd.prim) > 0 {
		p, err := l.check(pd.dir, pd.importPath, pd.prim)
		if err != nil {
			return nil, err
		}
		l.imp.register(pd.importPath, p.Types)
		pkgs = append(pkgs, p)
	}
	if len(pd.xtest) > 0 {
		p, err := l.check(pd.dir, pd.importPath, pd.xtest)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

func (l *Loader) check(dir, importPath string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: l.imp}
	tpkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-check %s: %w", importPath, err)
	}
	return &Package{
		Dir:        dir,
		ImportPath: importPath,
		Files:      files,
		Types:      tpkg,
		Info:       info,
		loader:     l,
	}, nil
}
