package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package (or the external _test
// package of a directory, loaded as its own Package).
type Package struct {
	// Dir is the absolute directory the package was loaded from.
	Dir string
	// ImportPath is the directory's import path within the module. The
	// external test package of a directory shares its directory's import
	// path; the two are distinguished by Types.Name().
	ImportPath string
	// Files are the parsed files that were type-checked together.
	Files []*ast.File
	// Types and Info are the go/types results for Files.
	Types *types.Package
	Info  *types.Info

	loader *Loader
}

// Loader locates, parses and type-checks packages of the enclosing
// module using only the standard library: go/build via the go/importer
// "source" importer for dependencies, go/parser + go/types for the
// packages under analysis. Test files are included, so invariants are
// enforced on test code too (PR 4 replaced timing sleeps in tests with
// synchronization precisely because test determinism matters).
type Loader struct {
	// Root is the module root (the directory containing go.mod); import
	// paths and diagnostic paths are derived relative to it.
	Root string
	// Module is the module path from go.mod.
	Module string
	// Tests selects whether _test.go files are loaded (driver default:
	// true).
	Tests bool

	fset *token.FileSet
	imp  types.Importer
}

// NewLoader builds a loader for the module rooted at root (a directory
// containing go.mod).
func NewLoader(root string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	mod, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Root:   abs,
		Module: mod,
		Tests:  true,
		fset:   fset,
		imp:    importer.ForCompiler(fset, "source", nil),
	}, nil
}

// FindModuleRoot walks upward from dir to the nearest directory
// containing go.mod.
func FindModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found above %s", abs)
		}
		d = parent
	}
}

// modulePath extracts the module path from a go.mod file.
func modulePath(file string) (string, error) {
	data, err := os.ReadFile(file)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("%s: no module directive", file)
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Load expands the given package patterns (a directory, or a directory
// followed by /... for the subtree rooted there; both relative to the
// process working directory) and returns the type-checked packages.
// Directories named testdata, vendor, or starting with "." or "_" are
// skipped during subtree expansion but are honoured when named
// explicitly, so fixture trees can be loaded on purpose without ever
// polluting a ./... run.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirs, err := l.expand(patterns)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		loaded, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, loaded...)
	}
	return pkgs, nil
}

func (l *Loader) expand(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive, pat = true, rest
		}
		if pat == "" || pat == "." {
			pat = "."
		}
		base, err := filepath.Abs(pat)
		if err != nil {
			return nil, err
		}
		if fi, err := os.Stat(base); err != nil || !fi.IsDir() {
			return nil, fmt.Errorf("package pattern %q: not a directory", pat)
		}
		if !recursive {
			add(base)
			continue
		}
		err = filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			if path != base && skipDir(d.Name()) {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func skipDir(name string) bool {
	return name == "testdata" || name == "vendor" ||
		strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

// importPathFor maps a directory to its import path within the module.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.Module, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("directory %s is outside module root %s", dir, l.Root)
	}
	return l.Module + "/" + filepath.ToSlash(rel), nil
}

// loadDir parses and type-checks one directory. It returns the primary
// package (non-test files plus in-package test files) and, when present,
// the external _test package as a second Package.
func (l *Loader) loadDir(dir string) ([]*Package, error) {
	importPath, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var prim, xtest []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		isTest := strings.HasSuffix(name, "_test.go")
		if isTest && !l.Tests {
			continue
		}
		// Honour build constraints (//go:build lines and GOOS/GOARCH file
		// suffixes) for the current platform, exactly as the go tool would:
		// e.g. snapfmt's mmap_linux.go / mmap_other.go pair must never be
		// type-checked together.
		if match, err := build.Default.MatchFile(dir, name); err != nil {
			return nil, err
		} else if !match {
			continue
		}
		file, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if isTest && strings.HasSuffix(file.Name.Name, "_test") {
			xtest = append(xtest, file)
		} else {
			prim = append(prim, file)
		}
	}
	var pkgs []*Package
	if len(prim) > 0 {
		p, err := l.check(dir, importPath, prim)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	if len(xtest) > 0 {
		p, err := l.check(dir, importPath, xtest)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

func (l *Loader) check(dir, importPath string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: l.imp}
	tpkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-check %s: %w", importPath, err)
	}
	return &Package{
		Dir:        dir,
		ImportPath: importPath,
		Files:      files,
		Types:      tpkg,
		Info:       info,
		loader:     l,
	}, nil
}
