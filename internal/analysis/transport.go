package analysis

import (
	"go/ast"
)

// transportAllowed are the packages that form the transport seam: dnsx
// owns the DNS sockets, faultx wraps conns and round-trippers with
// seeded fault injection, retry owns backoff/breaker policy. Only they
// may touch raw dial primitives; every other component must route
// through their wrappers so chaos harnesses can interpose in one place.
var transportAllowed = []string{"dnsx", "faultx", "retry"}

// netDialNames are the raw client-side primitives of package net.
var netDialNames = map[string]bool{
	"Dial": true, "DialTimeout": true, "DialUDP": true, "DialTCP": true,
	"DialIP": true, "Dialer": true,
}

// listenerAllowed is the serving seam: internal/obs owns the repo's one
// hardened http.Server construction (obs.NewServer/obs.Serve — header,
// read and idle timeouts plus graceful drain), and every listener must
// be built through it. Before squatd, the debug port shipped a
// zero-value http.Server (no slowloris bound, no idle reaping, Close
// dropped in-flight requests); funnelling listeners through one seam is
// what keeps that class of bug fixed. The transport layer proper
// (dnsx/faultx/retry, exempted above) still owns its own server
// sockets, e.g. the dnsx DNS server.
var listenerAllowed = []string{"obs"}

// netListenNames are the raw server-side socket primitives of package net.
var netListenNames = map[string]bool{
	"Listen": true, "ListenTCP": true, "ListenUDP": true, "ListenIP": true,
	"ListenPacket": true, "ListenConfig": true,
}

// httpListenerNames are the net/http server-construction forms that
// bypass the hardened obs server (and with it the timeout and graceful
// shutdown policy).
var httpListenerNames = map[string]bool{
	"Server": true, "ListenAndServe": true, "ListenAndServeTLS": true,
	"Serve": true, "ServeTLS": true,
}

// httpDirectNames are the net/http conveniences that bypass an injected
// client (and with it fault wrapping, retry accounting and breakers).
var httpDirectNames = map[string]bool{
	"Get": true, "Post": true, "PostForm": true, "Head": true,
	"DefaultClient": true,
}

// Transport enforces the PR 3 resilience invariant: all outbound I/O
// flows through the dnsx/faultx/retry transport layer.
var Transport = &Analyzer{
	Name: "transport",
	Doc: "forbid direct net.Dial*/net.Dialer/http.DefaultClient/http.Get-style " +
		"calls outside internal/dnsx, internal/faultx and internal/retry " +
		"(crawler, prober and whois must use the wrapped clients so fault " +
		"injection and retry accounting see every outbound connection), and " +
		"forbid raw listeners (net.Listen*, http.Server, http.ListenAndServe*) " +
		"outside internal/obs, the hardened-listener seam carrying the " +
		"timeout and graceful-drain policy",
	Run: runTransport,
}

func runTransport(pass *Pass) error {
	for _, name := range transportAllowed {
		if pathHasInternal(pass.ImportPath, name) {
			return nil
		}
	}
	listenerOK := false
	for _, name := range listenerAllowed {
		if pathHasInternal(pass.ImportPath, name) {
			listenerOK = true
			break
		}
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			pkgPath, name, sel, ok := qualifiedSel(pass.Info, n)
			if !ok {
				return true
			}
			if pass.InTestFile(sel.Pos()) {
				// Tests may open raw conns and listeners to drive the
				// servers they spin up; the invariant binds production
				// code paths.
				return true
			}
			switch pkgPath {
			case "net":
				if netDialNames[name] {
					pass.Reportf(sel.Pos(), "direct net.%s outside the transport layer; open connections through the dnsx/faultx/retry wrappers (e.g. faultx.DialTimeout or a component Dial hook)", name)
				}
				if !listenerOK && netListenNames[name] {
					pass.Reportf(sel.Pos(), "listening socket net.%s outside the serving layer; bind through obs.Serve so every repo listener carries the hardened timeout and graceful-drain policy", name)
				}
			case "net/http":
				if httpDirectNames[name] {
					pass.Reportf(sel.Pos(), "direct net/http.%s outside the transport layer; use an injected *http.Client whose transport the chaos harness can wrap", name)
				}
				if !listenerOK && httpListenerNames[name] {
					pass.Reportf(sel.Pos(), "direct net/http.%s outside the serving layer; build servers with obs.NewServer/obs.Serve so header/read/idle timeouts and graceful shutdown apply", name)
				}
			}
			return true
		})
	}
	return nil
}
