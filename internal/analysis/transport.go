package analysis

import (
	"go/ast"
)

// transportAllowed are the packages that form the transport seam: dnsx
// owns the DNS sockets, faultx wraps conns and round-trippers with
// seeded fault injection, retry owns backoff/breaker policy. Only they
// may touch raw dial primitives; every other component must route
// through their wrappers so chaos harnesses can interpose in one place.
var transportAllowed = []string{"dnsx", "faultx", "retry"}

// netDialNames are the raw client-side primitives of package net.
// Listeners are deliberately absent: serving is not the invariant's
// concern, dialing out is.
var netDialNames = map[string]bool{
	"Dial": true, "DialTimeout": true, "DialUDP": true, "DialTCP": true,
	"DialIP": true, "Dialer": true,
}

// httpDirectNames are the net/http conveniences that bypass an injected
// client (and with it fault wrapping, retry accounting and breakers).
var httpDirectNames = map[string]bool{
	"Get": true, "Post": true, "PostForm": true, "Head": true,
	"DefaultClient": true,
}

// Transport enforces the PR 3 resilience invariant: all outbound I/O
// flows through the dnsx/faultx/retry transport layer.
var Transport = &Analyzer{
	Name: "transport",
	Doc: "forbid direct net.Dial*/net.Dialer/http.DefaultClient/http.Get-style " +
		"calls outside internal/dnsx, internal/faultx and internal/retry; " +
		"crawler, prober and whois must use the wrapped clients so fault " +
		"injection and retry accounting see every outbound connection",
	Run: runTransport,
}

func runTransport(pass *Pass) error {
	for _, name := range transportAllowed {
		if pathHasInternal(pass.ImportPath, name) {
			return nil
		}
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			pkgPath, name, sel, ok := qualifiedSel(pass.Info, n)
			if !ok {
				return true
			}
			if pass.InTestFile(sel.Pos()) {
				// Tests may open raw conns to drive the servers they spin
				// up; the invariant binds production code paths.
				return true
			}
			switch pkgPath {
			case "net":
				if netDialNames[name] {
					pass.Reportf(sel.Pos(), "direct net.%s outside the transport layer; open connections through the dnsx/faultx/retry wrappers (e.g. faultx.DialTimeout or a component Dial hook)", name)
				}
			case "net/http":
				if httpDirectNames[name] {
					pass.Reportf(sel.Pos(), "direct net/http.%s outside the transport layer; use an injected *http.Client whose transport the chaos harness can wrap", name)
				}
			}
			return true
		})
	}
	return nil
}
