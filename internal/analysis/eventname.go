package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// loggerMethods are the trace.Logger emission methods, mapped to the
// index of the event-name argument (Event takes the level first).
var loggerMethods = map[string]int{
	"Event": 1, "Debug": 0, "Info": 0, "Warn": 0, "Error": 0,
}

// EventName extends the metricname convention (PR 1) to the structured
// event log (PR 6): every event emitted through trace.Logger carries a
// constant `pkg.name` lowercase dotted identifier, so DESIGN.md §9's
// event catalogue stays grep-able and squatexplain output is stable.
var EventName = &Analyzer{
	Name: "eventname",
	Doc: "require every trace.Logger emission (Event, Debug, Info, Warn, " +
		"Error) to use a constant lowercase.dotted event name, so the " +
		"DESIGN.md event catalogue stays grep-able and explain output stable",
	Run: runEventName,
}

func runEventName(pass *Pass) error {
	if strings.HasSuffix(pass.ImportPath, "internal/obs/trace") {
		// The convention's own implementation: the leveled helpers
		// forward their name argument to Event.
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			argIdx, ok := loggerMethods[sel.Sel.Name]
			if !ok || len(call.Args) <= argIdx {
				return true
			}
			selection := pass.Info.Selections[sel]
			if selection == nil || !isTraceLogger(selection.Recv()) {
				return true
			}
			if pass.InTestFile(call.Pos()) {
				// Tests may emit throwaway events; the convention binds
				// the events production code ships.
				return true
			}
			arg := call.Args[argIdx]
			tv, ok := pass.Info.Types[arg]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				pass.Reportf(arg.Pos(), "event name passed to trace.Logger.%s is not a constant string; event identifiers must be stable literals", sel.Sel.Name)
				return true
			}
			name := constant.StringVal(tv.Value)
			if !metricNameRE.MatchString(name) {
				pass.Reportf(arg.Pos(), "event name %q is not lowercase.dotted (want at least two [a-z0-9_] segments joined by dots)", name)
			}
			return true
		})
	}
	return nil
}

// isTraceLogger reports whether t is (a pointer to) the
// squatphi/internal/obs/trace Logger type. The package sits one level
// below internal/, so the shared pathHasInternal helper does not apply;
// the suffix match scopes fixture mirrors identically to the real path.
func isTraceLogger(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Logger" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "internal/obs/trace")
}
