package analysis

import (
	"go/build"
	"path/filepath"
	"strings"
	"testing"
)

// TestLoadBuildConstraints: files excluded by a //go:build tag or a
// GOOS filename suffix must not be parsed or type-checked. Both excluded
// fixtures reference an undefined symbol, so including either fails the
// load loudly.
func TestLoadBuildConstraints(t *testing.T) {
	if build.Default.GOOS == "windows" {
		t.Skip("fixture assumes a non-windows GOOS")
	}
	pkgs := loadFixture(t, "constrained")
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if len(p.Files) != 1 {
		t.Fatalf("loaded %d files, want only ok.go", len(p.Files))
	}
	l, err := sharedLoader()
	if err != nil {
		t.Fatal(err)
	}
	if name := filepath.Base(l.Fset().Position(p.Files[0].Pos()).Filename); name != "ok.go" {
		t.Errorf("loaded file = %s, want ok.go", name)
	}
	scope := p.Types.Scope()
	if scope.Lookup("Here") == nil {
		t.Error("ok.go's Here missing from the package scope")
	}
	if scope.Lookup("Tagged") != nil {
		t.Error("tagged.go was loaded despite its build tag")
	}
	if scope.Lookup("OnWindows") != nil {
		t.Error("ok_windows.go was loaded despite its GOOS suffix")
	}
}

// TestLoadAllBrokenDegrades: a package that fails to type-check becomes
// a Broken entry while the rest of the load succeeds; the strict Load
// entry point turns the same situation into an error.
func TestLoadAllBrokenDegrades(t *testing.T) {
	l, err := sharedLoader()
	if err != nil {
		t.Fatal(err)
	}
	pkgs, broken, err := l.LoadAll(
		filepath.Join("testdata", "analysis", "broken")+"/...",
		filepath.Join("testdata", "analysis", "src", "constrained"))
	if err != nil {
		t.Fatal(err)
	}
	if len(broken) != 1 || !strings.HasSuffix(broken[0].ImportPath, "brokenpkg") || broken[0].Err == nil {
		t.Fatalf("broken = %+v, want exactly the brokenpkg entry with its type error", broken)
	}
	if !strings.Contains(broken[0].Err.Error(), "type-check") {
		t.Errorf("broken error %q does not mention type-check", broken[0].Err)
	}
	if len(pkgs) != 1 || filepath.Base(pkgs[0].Dir) != "constrained" {
		t.Fatalf("pkgs = %v, want just the healthy constrained package", pkgs)
	}
	if _, err := l.Load(filepath.Join("testdata", "analysis", "broken") + "/..."); err == nil {
		t.Fatal("strict Load must fail on a broken package")
	}
}

// TestLoadAllSharedTypeUniverse: when one loaded package imports
// another, the importer must hand back the *same* *types.Package the
// loader checked — pointer identity is what makes cross-package call
// graph edges resolve.
func TestLoadAllSharedTypeUniverse(t *testing.T) {
	l, err := sharedLoader()
	if err != nil {
		t.Fatal(err)
	}
	pkgs, broken, err := l.LoadAll("../squat", "../confusables")
	if err != nil {
		t.Fatal(err)
	}
	if len(broken) != 0 {
		t.Fatalf("broken = %+v", broken)
	}
	var squatPkg, confPkg *Package
	for _, p := range pkgs {
		switch filepath.Base(p.Dir) {
		case "squat":
			squatPkg = p
		case "confusables":
			confPkg = p
		}
	}
	if squatPkg == nil || confPkg == nil {
		t.Fatalf("missing loaded packages: %v", pkgs)
	}
	found := false
	for _, imp := range squatPkg.Types.Imports() {
		if imp.Path() == confPkg.ImportPath {
			found = true
			if imp != confPkg.Types {
				t.Error("squat's confusables import is a different *types.Package than the loaded one; the type universes are split")
			}
		}
	}
	if !found {
		t.Fatal("squat does not import confusables; the fixture premise broke")
	}
}
