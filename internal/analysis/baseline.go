package analysis

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Baseline is the committed set of accepted findings. Entries are keyed
// on (analyzer, path, message) with an occurrence count — line numbers
// are deliberately absent so unrelated edits do not invalidate the file —
// and every entry carries a '#' justification comment explaining why the
// finding is exempt rather than fixed. The workflow is burn-down: fix a
// finding, delete its entry (or run squatvet -write-baseline and review
// the diff); new findings never enter the baseline silently.
type Baseline struct {
	counts map[string]int
}

// baselineFieldSep separates the fields of one baseline entry line:
// count, analyzer, path, message.
const baselineFieldSep = "\t"

// ParseBaseline reads the baseline format: '#' comment lines and blank
// lines are ignored; every other line is count<TAB>analyzer<TAB>path<TAB>message.
func ParseBaseline(r io.Reader) (*Baseline, error) {
	b := &Baseline{counts: map[string]int{}}
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 1<<16), 1<<20)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := scanner.Text()
		if strings.TrimSpace(line) == "" || strings.HasPrefix(strings.TrimSpace(line), "#") {
			continue
		}
		parts := strings.SplitN(line, baselineFieldSep, 4)
		if len(parts) != 4 {
			return nil, fmt.Errorf("baseline line %d: want count<TAB>analyzer<TAB>path<TAB>message, got %q", lineNo, line)
		}
		n, err := strconv.Atoi(parts[0])
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("baseline line %d: bad count %q", lineNo, parts[0])
		}
		key := parts[1] + "\t" + parts[2] + "\t" + parts[3]
		b.counts[key] += n
	}
	if err := scanner.Err(); err != nil {
		return nil, err
	}
	return b, nil
}

// LoadBaselineFile reads a baseline file; a missing file yields an empty
// baseline (nothing exempt).
func LoadBaselineFile(path string) (*Baseline, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return &Baseline{counts: map[string]int{}}, nil
		}
		return nil, err
	}
	defer f.Close()
	b, err := ParseBaseline(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return b, nil
}

// Filter splits diags into fresh findings (not covered by the baseline)
// and reports stale baseline keys whose counted findings no longer all
// exist — a nudge to shrink the file.
func (b *Baseline) Filter(diags []Diagnostic) (fresh []Diagnostic, stale []string) {
	return b.FilterScoped(diags, nil)
}

// FilterScoped is Filter with a scope predicate over baseline entries:
// stale entries outside the scope are suppressed. A partial run
// (squatvet ./internal/obs, or -analyzers errflow) produces no findings
// for other packages or other analyzers, so without scoping every entry
// for an unanalyzed file — or an analyzer that did not run — would be
// falsely reported as stale. nil means everything is in scope.
func (b *Baseline) FilterScoped(diags []Diagnostic, inScope func(analyzer, path string) bool) (fresh []Diagnostic, stale []string) {
	remaining := make(map[string]int, len(b.counts))
	for k, v := range b.counts {
		remaining[k] = v
	}
	for _, d := range diags {
		if remaining[d.Key()] > 0 {
			remaining[d.Key()]--
			continue
		}
		fresh = append(fresh, d)
	}
	for k, v := range remaining {
		if v > 0 {
			parts := strings.SplitN(k, "\t", 3)
			if inScope != nil && !inScope(parts[0], parts[1]) {
				continue
			}
			stale = append(stale, fmt.Sprintf("%s: [%s] %s (%d unmatched)", parts[1], parts[0], parts[2], v))
		}
	}
	sort.Strings(stale)
	return fresh, stale
}

// WriteBaseline renders diags as a baseline file body, grouped and
// counted, with a placeholder justification comment per entry for the
// author to fill in.
func WriteBaseline(w io.Writer, diags []Diagnostic) error {
	counts := map[string]int{}
	var order []string
	for _, d := range diags {
		if counts[d.Key()] == 0 {
			order = append(order, d.Key())
		}
		counts[d.Key()]++
	}
	sort.Strings(order)
	if _, err := fmt.Fprintf(w, "# squatvet baseline — accepted findings, burned down incrementally.\n# format: count<TAB>analyzer<TAB>path<TAB>message\n# Every entry must carry a one-line justification comment.\n"); err != nil {
		return err
	}
	for _, key := range order {
		parts := strings.SplitN(key, "\t", 3)
		if _, err := fmt.Fprintf(w, "\n# TODO: justify this exemption.\n%d%s%s%s%s%s%s\n",
			counts[key], baselineFieldSep, parts[0], baselineFieldSep, parts[1], baselineFieldSep, parts[2]); err != nil {
			return err
		}
	}
	return nil
}
