package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"squatphi/internal/analysis/callgraph"
)

// HotPath is the interprocedural half of the zero-allocation contract.
// hotalloc checks the bodies of //squat:hot functions; hotpath walks the
// whole-repo call graph from those roots and checks everything they can
// reach, so an allocating helper two frames below a hot root — or a
// lock, a log call, or I/O anywhere under it — is a finding even though
// the root's own body is clean. //squat:cold marks a deliberate boundary
// (hit-time, error-path or sampled code) where traversal stops.
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc: "walk the call graph from every //squat:hot root and report, in " +
		"reachable repo functions: allocation patterns (string<->[]byte " +
		"conversions, fmt.*, allocating strings helpers) in unannotated " +
		"functions, sync lock acquisition, and I/O or logging calls; also " +
		"report reachable functions carrying neither //squat:hot nor " +
		"//squat:cold, so the annotation set stays honest. Traversal stops " +
		"at //squat:cold boundaries and test files",
	NeedsCallGraph: true,
	Run:            runHotPath,
}

// hotPathIOPkgs are packages whose calls have no business on a
// per-record scan path.
var hotPathIOPkgs = map[string]bool{
	"os": true, "net": true, "net/http": true, "log": true, "syscall": true,
}

// hotPathFinding is one finding attributed to the package that owns the
// offending function, so each per-package pass reports only its own.
type hotPathFinding struct {
	pkg *types.Package
	pos token.Pos
	msg string
}

func runHotPath(pass *Pass) error {
	if pass.Graph == nil {
		return nil // degraded load: the driver skipped graph construction
	}
	for _, f := range hotPathClosure(pass.Graph) {
		if f.pkg == pass.Pkg {
			pass.Reportf(f.pos, "%s", f.msg)
		}
	}
	return nil
}

// hotPathClosure computes (once per graph, memoized across the driver's
// per-package passes) the transitive closure of //squat:hot roots and
// every finding in it, in deterministic node order.
func hotPathClosure(g *callgraph.Graph) []hotPathFinding {
	if cached, ok := g.Memo["hotpath"]; ok {
		return cached.([]hotPathFinding)
	}
	// BFS from all roots at once, in node order; the first root to reach
	// a function becomes its reported representative, deterministically.
	rootOf := map[*callgraph.Node]*callgraph.Node{}
	var queue []*callgraph.Node
	for _, n := range g.Nodes {
		if n.Decl != nil && isHotMarked(n.Decl) && !g.InTestFile(n) {
			rootOf[n] = n
			queue = append(queue, n)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.Out {
			c := e.Callee
			if _, seen := rootOf[c]; seen {
				continue
			}
			if g.InTestFile(c) {
				continue
			}
			if c.Decl != nil && isColdMarked(c.Decl) {
				continue
			}
			rootOf[c] = rootOf[n]
			queue = append(queue, c)
		}
	}
	var out []hotPathFinding
	report := func(n *callgraph.Node, pos token.Pos, format string, args ...any) {
		out = append(out, hotPathFinding{pkg: n.Unit.Pkg, pos: pos, msg: fmt.Sprintf(format, args...)})
	}
	for _, n := range g.Nodes {
		root, reached := rootOf[n]
		if !reached {
			continue
		}
		annotated := n.Decl != nil && isHotMarked(n.Decl)
		if !annotated && n.Decl != nil {
			report(n, n.Pos(), "%s is reachable from //squat:hot root %s but carries neither //squat:hot nor //squat:cold; annotate it so the hot-path contract stays explicit", n.Name, root.Name)
		}
		body := n.Body()
		if body == nil {
			continue
		}
		scanHotBody(n, root, annotated, root == n, report)
	}
	g.Memo["hotpath"] = out
	return out
}

// scanHotBody pattern-scans one reachable function body. Nested function
// literals are separate graph nodes and are not descended into. The
// allocation patterns are only checked in unannotated functions —
// hotalloc already owns them inside //squat:hot bodies, and a //squat:hot
// mark is the author's explicit claim that the body honors the contract —
// while locks and I/O are checked in every reachable non-root function.
func scanHotBody(n, root *callgraph.Node, annotated, isRoot bool, report func(*callgraph.Node, token.Pos, string, ...any)) {
	info := n.Unit.Info
	var stack []ast.Node
	ast.Inspect(n.Body(), func(x ast.Node) bool {
		if x == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if _, isLit := x.(*ast.FuncLit); isLit {
			return false // its own node; scanned when (and only if) reached
		}
		stack = append(stack, x)
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		if !annotated {
			if conv, isConv := allocConversion(info, call); isConv && !allocFreeContext(stack, call) {
				report(n, call.Pos(), "allocating conversion %s in %s, reachable from //squat:hot root %s; push it behind a //squat:cold boundary or use the byte helpers", conv, n.Name, root.Name)
				return true
			}
			if pkgPath, selName, _, ok := qualifiedSel(info, call.Fun); ok {
				switch {
				case pkgPath == "fmt":
					report(n, call.Pos(), "fmt.%s in %s, reachable from //squat:hot root %s, allocates on every call; format off the hot path", selName, n.Name, root.Name)
					return true
				case pkgPath == "strings" && hotAllocStrings[selName]:
					report(n, call.Pos(), "strings.%s in %s, reachable from //squat:hot root %s, allocates its result; use the append-style byte helpers", selName, n.Name, root.Name)
					return true
				}
			}
		}
		if isRoot {
			return true // the root's own locks are held at the root by definition
		}
		if fn := calleeFunc(info, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
			switch fn.Name() {
			case "Lock", "RLock":
				report(n, call.Pos(), "sync %s acquired in %s, reachable from //squat:hot root %s and not held at the root; per-record locking breaks the scan hot loop, move it behind a //squat:cold boundary", fn.Name(), n.Name, root.Name)
				return true
			}
		}
		if pkgPath, selName, _, ok := qualifiedSel(info, call.Fun); ok && hotPathIOPkgs[pkgPath] {
			report(n, call.Pos(), "%s.%s called in %s, reachable from //squat:hot root %s; I/O and logging do not belong on the per-record scan path, move them behind a //squat:cold boundary", pkgPath, selName, n.Name, root.Name)
		}
		return true
	})
}

// calleeFunc resolves a call's callee to its function object, nil for
// dynamic calls, builtins and conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[f].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[f.Sel].(*types.Func)
		return fn
	}
	return nil
}
