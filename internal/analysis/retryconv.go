package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// RetryConv enforces the PR 3 retry-count convention: a negative
// configured count disables retries, zero selects the component default,
// positive is used as given. The only way to honour that contract is to
// resolve the raw field through retry.Resolve before consuming it, so
// the analyzer flags (a) retry-count config fields consumed directly in
// comparisons or arithmetic and (b) retry.Resolve calls whose default is
// not a positive constant (a zero or negative default would collapse the
// "0 means default" case).
var RetryConv = &Analyzer{
	Name: "retryconv",
	Doc: "require retry-count config fields (Retries, *Retries) to be resolved " +
		"via retry.Resolve(n, def) before use, and retry.Resolve defaults to be " +
		"positive constants, preserving the negative=off / 0=default convention",
	Run: runRetryConv,
}

func runRetryConv(pass *Pass) error {
	if pathHasInternal(pass.ImportPath, "retry") {
		return nil // the convention's own implementation
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.BinaryExpr:
				if pass.InTestFile(node.Pos()) {
					return true // tests may assert raw config values
				}
				for _, operand := range []ast.Expr{node.X, node.Y} {
					if sel, ok := retryCountField(pass.Info, operand); ok {
						pass.Reportf(sel.Pos(), "raw retry-count field %s consumed in an expression; resolve it first with retry.Resolve(n, def) (negative=off, 0=default convention)", sel.Sel.Name)
					}
				}
			case *ast.CallExpr:
				pkgPath, name, _, ok := qualifiedSel(pass.Info, node.Fun)
				if !ok || name != "Resolve" || !pathHasInternal(pkgPath, "retry") {
					return true
				}
				if len(node.Args) != 2 {
					return true
				}
				tv, ok := pass.Info.Types[node.Args[1]]
				if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
					return true
				}
				if v, ok := constant.Int64Val(tv.Value); ok && v <= 0 {
					pass.Reportf(node.Args[1].Pos(), "retry.Resolve default %d is not positive; a component default of <= 0 makes the 0=default convention unsatisfiable", v)
				}
			}
			return true
		})
	}
	return nil
}

// retryCountField reports whether expr (through parens) reads an
// int-typed struct field named Retries or ending in Retries.
func retryCountField(info *types.Info, expr ast.Expr) (*ast.SelectorExpr, bool) {
	for {
		paren, ok := expr.(*ast.ParenExpr)
		if !ok {
			break
		}
		expr = paren.X
	}
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	selection := info.Selections[sel]
	if selection == nil || selection.Kind() != types.FieldVal {
		return nil, false
	}
	name := sel.Sel.Name
	if name != "Retries" && !strings.HasSuffix(name, "Retries") {
		return nil, false
	}
	basic, ok := selection.Type().Underlying().(*types.Basic)
	if !ok || basic.Kind() != types.Int {
		return nil, false
	}
	return sel, true
}
