package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrFlow guards the scan spine against silently swallowed errors: the
// paper-scale pipeline only counts because a failed shard read, cache
// write or response encode surfaces somewhere (a return, a degraded
// counter, a log) instead of vanishing. It is intraprocedural: the
// discard is visible at the call site.
var ErrFlow = &Analyzer{
	Name: "errflow",
	Doc: "in internal/core, internal/deltascan, internal/serve and " +
		"internal/fsx, a call whose error result is discarded — as a bare " +
		"statement or assigned to _ — is a finding unless the callee is a " +
		"sanctioned sink (Close/Flush/Sync/Shutdown/Stop/Cancel teardown " +
		"idioms, never-failing bytes/strings/hash writers, fmt.Fprint* to " +
		"an in-process writer); test files are exempt",
	Run: runErrFlow,
}

func errFlowScope(importPath string) bool {
	return pathHasInternal(importPath, "core") ||
		pathHasInternal(importPath, "deltascan") ||
		pathHasInternal(importPath, "serve") ||
		pathHasInternal(importPath, "fsx")
}

// errFlowSinkNames are teardown-idiom method names whose errors are
// conventionally unreportable at the call site (defer f.Close() and
// friends): the resource is going away either way.
var errFlowSinkNames = map[string]bool{
	"Close": true, "Flush": true, "Sync": true, "Shutdown": true,
	"Stop": true, "Cancel": true,
}

// errFlowSinkPkgs hold callees documented never to fail (bytes.Buffer,
// strings.Builder, hash writers). fmt is handled separately: only its
// Fprint family is sanctioned, whose sole error is the destination
// writer's — in-process writers here. Sscanf/Scan errors carry parse
// results and must be handled.
var errFlowSinkPkgs = map[string]bool{
	"bytes": true, "strings": true, "hash": true,
}

func runErrFlow(pass *Pass) error {
	if !errFlowScope(pass.ImportPath) {
		return nil
	}
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok {
					checkDiscardedCall(pass, call, false)
				}
			case *ast.DeferStmt:
				checkDiscardedCall(pass, s.Call, true)
			case *ast.AssignStmt:
				checkBlankAssign(pass, s)
			}
			return true
		})
	}
	return nil
}

// checkDiscardedCall reports a bare or deferred call that returns an
// error nobody receives.
func checkDiscardedCall(pass *Pass, call *ast.CallExpr, deferred bool) {
	results := callResults(pass.Info, call)
	hasErr := false
	for _, t := range results {
		if isErrorType(t) {
			hasErr = true
		}
	}
	if !hasErr || sanctionedErrSink(pass.Info, call) {
		return
	}
	how := "statement discards"
	if deferred {
		how = "deferred call discards"
	}
	pass.Reportf(call.Pos(), "%s the error from %s; handle it, return it, or route it through a sanctioned sink (core.degraded counter, log, explicit _ = with justification upstream)", how, calleeDisplay(pass.Info, call))
}

// checkBlankAssign reports error results assigned to _.
func checkBlankAssign(pass *Pass, s *ast.AssignStmt) {
	check := func(lhs ast.Expr, t types.Type, call *ast.CallExpr) {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name != "_" || !isErrorType(t) || sanctionedErrSink(pass.Info, call) {
			return
		}
		pass.Reportf(id.Pos(), "error result of %s assigned to _; handle it, return it, or route it through a sanctioned sink", calleeDisplay(pass.Info, call))
	}
	if len(s.Rhs) == 1 {
		call, ok := s.Rhs[0].(*ast.CallExpr)
		if !ok {
			return
		}
		results := callResults(pass.Info, call)
		if len(results) != len(s.Lhs) {
			return
		}
		for i, lhs := range s.Lhs {
			check(lhs, results[i], call)
		}
		return
	}
	for i, rhs := range s.Rhs {
		if i >= len(s.Lhs) {
			break
		}
		if call, ok := rhs.(*ast.CallExpr); ok {
			if results := callResults(pass.Info, call); len(results) == 1 {
				check(s.Lhs[i], results[0], call)
			}
		}
	}
}

// callResults returns the call's result types (nil for conversions).
func callResults(info *types.Info, call *ast.CallExpr) []types.Type {
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return nil
	}
	t := info.TypeOf(call)
	switch t := t.(type) {
	case nil:
		return nil
	case *types.Tuple:
		out := make([]types.Type, t.Len())
		for i := 0; i < t.Len(); i++ {
			out[i] = t.At(i).Type()
		}
		return out
	default:
		return []types.Type{t}
	}
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool { return t != nil && types.Identical(t, errorType) }

// sanctionedErrSink reports callees whose discarded error is accepted by
// convention.
func sanctionedErrSink(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil {
		return false
	}
	if errFlowSinkNames[fn.Name()] {
		return true
	}
	if fn.Pkg() == nil {
		return false
	}
	if fn.Pkg().Path() == "fmt" {
		return strings.HasPrefix(fn.Name(), "Fprint")
	}
	return errFlowSinkPkgs[fn.Pkg().Path()]
}

// calleeDisplay renders the callee for messages: pkg.Fn, Type.Method, or
// the raw expression form when unresolvable.
func calleeDisplay(info *types.Info, call *ast.CallExpr) string {
	fn := calleeFunc(info, call)
	if fn == nil {
		return "the call"
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if named := namedOf(sig.Recv().Type()); named != nil {
			return named.Obj().Name() + "." + fn.Name()
		}
		return fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}
