// Package analysis is squatvet's static-analysis engine: a small
// package-loading driver built on stdlib go/parser + go/ast + go/types
// (source importer, no x/tools dependency) and the analyzers that encode
// this repository's correctness conventions as machine-checked invariants.
//
// The reproduction's guarantees are structural: byte-identical
// serial/parallel/delta scan equivalence requires that no scan-path code
// reads the wall clock or unseeded randomness (PR 2/4), the paper-table
// mapping in DESIGN.md requires stable literal `pkg.name` metric
// identifiers (PR 1), and the chaos suites require that every outbound
// connection flows through the dnsx/faultx/retry transport seam (PR 3).
// One stray time.Now() or raw net.Dial silently breaks golden tests or
// chaos counter snapshots; as Marchal et al. argue for phishing
// classifiers themselves, guarantees must come from the pipeline's
// construction, not from spot checks. squatvet is the construction-time
// checker: it runs in `make lint` (and therefore `make verify`, `make
// race` and `make chaos`), and a committed baseline file lets
// intentionally exempt findings be burned down incrementally.
package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"squatphi/internal/analysis/callgraph"
)

// Diagnostic is one finding: an analyzer, a position, and a message. Path
// is slash-separated and relative to the loader root (the module root),
// so diagnostics — and the baseline entries derived from them — are
// stable across machines.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	Path     string `json:"path"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// String renders the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Path, d.Line, d.Col, d.Analyzer, d.Message)
}

// Key identifies a diagnostic for baseline matching: analyzer, file and
// message, but not line/column, so unrelated edits that shift lines do
// not invalidate the baseline.
func (d Diagnostic) Key() string {
	return d.Analyzer + "\t" + d.Path + "\t" + d.Message
}

// Analyzer is one named invariant check run over a type-checked package.
type Analyzer struct {
	// Name is the analyzer's identifier, used in diagnostics, baseline
	// entries and the driver's -list output.
	Name string
	// Doc is a one-paragraph description of the invariant the analyzer
	// guards and where that invariant comes from.
	Doc string
	// NeedsCallGraph marks analyzers that consult Pass.Graph. The driver
	// builds the whole-load call graph once, before any such analyzer
	// runs; on a partial (degraded) load these analyzers are skipped,
	// because a graph missing packages would silently under-approximate.
	NeedsCallGraph bool
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer   *Analyzer
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
	ImportPath string
	// Graph is the whole-load call graph; non-nil only for analyzers
	// that declare NeedsCallGraph.
	Graph *callgraph.Graph

	root   string
	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	path := position.Filename
	if rel, err := filepath.Rel(p.root, path); err == nil && !strings.HasPrefix(rel, "..") {
		path = rel
	}
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Path:     filepath.ToSlash(path),
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// InTestFile reports whether pos lies in a _test.go file.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// All returns every analyzer squatvet ships, in stable order.
func All() []*Analyzer {
	return []*Analyzer{Determinism, MetricName, EventName, Transport, RetryConv, LockCheck, HotAlloc,
		HotPath, LifecycleLeak, ErrFlow}
}

// Intraprocedural filters out analyzers that need the whole-load call
// graph; it is the set the driver degrades to when some package failed
// to load.
func Intraprocedural(analyzers []*Analyzer) []*Analyzer {
	var out []*Analyzer
	for _, a := range analyzers {
		if !a.NeedsCallGraph {
			out = append(out, a)
		}
	}
	return out
}

// ByName resolves a comma-separated analyzer list ("" selects all).
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return All(), nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		a := byName[strings.TrimSpace(n)]
		if a == nil {
			return nil, fmt.Errorf("unknown analyzer %q", strings.TrimSpace(n))
		}
		out = append(out, a)
	}
	return out, nil
}

// Run executes the given analyzers over the loaded packages and returns
// the findings sorted by position then analyzer name.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	diags, _, err := RunTimed(pkgs, analyzers)
	return diags, err
}

// Timing is one per-analyzer wall-time entry from RunTimed. The
// synthetic "callgraph" entry reports the one-time graph construction.
type Timing struct {
	Name     string
	Duration time.Duration
}

// RunTimed is Run plus per-analyzer wall times, in analyzer order. When
// any analyzer declares NeedsCallGraph the whole-load call graph is
// built once, up front, and handed to those analyzers through the pass.
func RunTimed(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, []Timing, error) {
	var timings []Timing
	var graph *callgraph.Graph
	needsGraph := false
	for _, a := range analyzers {
		needsGraph = needsGraph || a.NeedsCallGraph
	}
	if needsGraph && len(pkgs) > 0 {
		start := time.Now()
		var units []*callgraph.Unit
		for _, pkg := range pkgs {
			units = append(units, &callgraph.Unit{
				ImportPath: pkg.ImportPath,
				Files:      pkg.Files,
				Pkg:        pkg.Types,
				Info:       pkg.Info,
			})
		}
		graph = callgraph.Build(pkgs[0].loader.fset, units)
		timings = append(timings, Timing{Name: "callgraph", Duration: time.Since(start)})
	}
	var diags []Diagnostic
	elapsed := make(map[string]time.Duration, len(analyzers))
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:   a,
				Fset:       pkg.loader.fset,
				Files:      pkg.Files,
				Pkg:        pkg.Types,
				Info:       pkg.Info,
				ImportPath: pkg.ImportPath,
				root:       pkg.loader.Root,
				report:     func(d Diagnostic) { diags = append(diags, d) },
			}
			if a.NeedsCallGraph {
				pass.Graph = graph
			}
			start := time.Now()
			err := a.Run(pass)
			elapsed[a.Name] += time.Since(start)
			if err != nil {
				return nil, nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
	}
	for _, a := range analyzers {
		timings = append(timings, Timing{Name: a.Name, Duration: elapsed[a.Name]})
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Path != b.Path {
			return a.Path < b.Path
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return diags, timings, nil
}

// RenderText writes diagnostics one per line in the conventional
// file:line:col form. Output is a pure function of the (sorted) input,
// so it is byte-identical at any loader worker count.
func RenderText(w io.Writer, diags []Diagnostic) error {
	for _, d := range diags {
		if _, err := fmt.Fprintln(w, d.String()); err != nil {
			return err
		}
	}
	return nil
}

// RenderJSON writes diagnostics as an indented JSON array (never null,
// so consumers can range over the result unconditionally).
func RenderJSON(w io.Writer, diags []Diagnostic) error {
	if diags == nil {
		diags = []Diagnostic{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(diags)
}

// pathHasInternal reports whether the import path contains the segment
// pair "internal/<name>" — the scoping rule shared by analyzers, written
// so fixture trees under testdata/ (whose import paths embed a mirrored
// internal/<name> suffix) scope identically to the real packages.
func pathHasInternal(importPath, name string) bool {
	segs := strings.Split(importPath, "/")
	for i := 0; i+1 < len(segs); i++ {
		if segs[i] == "internal" && segs[i+1] == name {
			return true
		}
	}
	return false
}

// pathHasSegment reports whether the import path contains seg as a whole
// path segment (used to scope cmd/* binaries, including fixture trees
// whose import paths embed a mirrored cmd/ segment).
func pathHasSegment(importPath, seg string) bool {
	for _, s := range strings.Split(importPath, "/") {
		if s == seg {
			return true
		}
	}
	return false
}

// usedPackage resolves the package an identifier refers to (the X of a
// qualified selector like net.Dial), or "" when it is not a package name.
func usedPackage(info *types.Info, id *ast.Ident) string {
	if pn, ok := info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

// qualifiedSel decomposes n as a package-qualified selector pkg.Name
// and returns the package path and selected name.
func qualifiedSel(info *types.Info, n ast.Node) (pkgPath, name string, sel *ast.SelectorExpr, ok bool) {
	s, isSel := n.(*ast.SelectorExpr)
	if !isSel {
		return "", "", nil, false
	}
	id, isIdent := s.X.(*ast.Ident)
	if !isIdent {
		return "", "", nil, false
	}
	path := usedPackage(info, id)
	if path == "" {
		return "", "", nil, false
	}
	return path, s.Sel.Name, s, true
}
