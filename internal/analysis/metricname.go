package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
)

// metricNameRE is the repo's metric-identifier grammar: two or more
// lowercase dotted segments of [a-z0-9_], e.g. "crawler.fetch.retries" or
// "dnsx.probe.rtt_ms". DESIGN.md §3 maps these identifiers to paper
// tables, so they must be grep-able literals with stable spelling.
var metricNameRE = regexp.MustCompile(`^[a-z0-9_]+(\.[a-z0-9_]+)+$`)

// registryMethods are the obs.Registry resolution methods whose first
// argument is a metric name.
var registryMethods = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true, "RegisterFunc": true,
}

// MetricName enforces the PR 1 metric-identifier convention: every
// counter/gauge/histogram/value registered with obs.Registry gets a
// constant `pkg.name` lowercase dotted identifier.
var MetricName = &Analyzer{
	Name: "metricname",
	Doc: "require every obs.Registry metric registration (Counter, Gauge, " +
		"Histogram, RegisterFunc) to use a constant lowercase.dotted name, so " +
		"the DESIGN.md metric-to-paper-table mapping stays grep-able and stable",
	Run: runMetricName,
}

func runMetricName(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !registryMethods[sel.Sel.Name] {
				return true
			}
			selection := pass.Info.Selections[sel]
			if selection == nil || !isObsRegistry(selection.Recv()) {
				return true
			}
			if pass.InTestFile(call.Pos()) {
				// Test-local registries may use throwaway names; the
				// convention binds the metrics production code exports.
				return true
			}
			tv, ok := pass.Info.Types[call.Args[0]]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				pass.Reportf(call.Args[0].Pos(), "metric name passed to obs.Registry.%s is not a constant string; metric identifiers must be stable literals", sel.Sel.Name)
				return true
			}
			name := constant.StringVal(tv.Value)
			if !metricNameRE.MatchString(name) {
				pass.Reportf(call.Args[0].Pos(), "metric name %q is not lowercase.dotted (want at least two [a-z0-9_] segments joined by dots)", name)
			}
			return true
		})
	}
	return nil
}

// isObsRegistry reports whether t is (a pointer to) the
// squatphi/internal/obs Registry type.
func isObsRegistry(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Registry" && obj.Pkg() != nil && pathHasInternal(obj.Pkg().Path(), "obs")
}
