package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LifecycleLeak guards the serving layer's drain guarantee: squatd's
// graceful shutdown (listener drain → delta-state spill → metrics flush)
// only works if every goroutine spawned in serving code is join-able.
// A goroutine nobody can wait for keeps working through shutdown and
// races the state spill — exactly the class of bug PR 8's
// serving-lifecycle fixes were about.
var LifecycleLeak = &Analyzer{
	Name: "lifecycleleak",
	Doc: "every go statement in internal/serve, internal/obs and cmd/* " +
		"must start a join-able goroutine: its body signals a " +
		"sync.WaitGroup, blocks on <-ctx.Done() (or ranges over a " +
		"channel), or calls a serve.Lifecycle method; naked goroutines in " +
		"serving code outlive shutdown and race the state spill. Named " +
		"callees are resolved through the call graph so the rule sees " +
		"their bodies across packages",
	NeedsCallGraph: true,
	Run:            runLifecycleLeak,
}

func lifecycleScope(importPath string) bool {
	return pathHasInternal(importPath, "serve") ||
		pathHasInternal(importPath, "obs") ||
		pathHasSegment(importPath, "cmd")
}

func runLifecycleLeak(pass *Pass) error {
	if pass.Graph == nil || !lifecycleScope(pass.ImportPath) {
		return nil
	}
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			checkGoStmt(pass, g)
			return true
		})
	}
	return nil
}

// checkGoStmt resolves the spawned function's body and reports the spawn
// site when no join construct is found in it.
func checkGoStmt(pass *Pass, g *ast.GoStmt) {
	fun := ast.Unparen(g.Call.Fun)
	if lit, ok := fun.(*ast.FuncLit); ok {
		if !joinable(lit.Body, pass.Info) {
			pass.Reportf(g.Pos(), "goroutine is not join-able (no sync.WaitGroup signal, <-ctx.Done() wait, channel range, or serve.Lifecycle hook in its body); tie it to the component lifecycle so shutdown can drain it")
		}
		return
	}
	fn := calleeFunc(pass.Info, g.Call)
	if fn == nil {
		pass.Reportf(g.Pos(), "goroutine calls through a function value, which cannot be proven join-able; spawn a named worker tied to the component lifecycle so shutdown can drain it")
		return
	}
	node := pass.Graph.NodeOf(fn)
	if node == nil || node.Decl == nil || node.Decl.Body == nil {
		pass.Reportf(g.Pos(), "goroutine body %s is outside the analyzed packages; wrap the spawn in a join-able worker so shutdown can drain it", fn.Name())
		return
	}
	if !joinable(node.Decl.Body, node.Unit.Info) {
		pass.Reportf(g.Pos(), "goroutine %s is not join-able (no sync.WaitGroup signal, <-ctx.Done() wait, channel range, or serve.Lifecycle hook in its body); tie it to the component lifecycle so shutdown can drain it", fn.Name())
	}
}

// joinable reports whether body contains one of the sanctioned join
// constructs. info must be the types.Info of the package the body was
// type-checked in (for cross-package named callees, the callee's).
func joinable(body *ast.BlockStmt, info *types.Info) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			if fn := calleeFunc(info, x); fn != nil {
				if fn.Pkg() != nil && fn.Pkg().Path() == "sync" && fn.Name() == "Done" {
					found = true // wg.Done() — the spawner can Wait
				}
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
					if named := namedOf(sig.Recv().Type()); named != nil {
						obj := named.Obj()
						if obj.Name() == "Lifecycle" && obj.Pkg() != nil && pathHasInternal(obj.Pkg().Path(), "serve") {
							found = true // any serve.Lifecycle hook registers with the drain
						}
					}
				}
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				if call, ok := ast.Unparen(x.X).(*ast.CallExpr); ok {
					if fn := calleeFunc(info, call); fn != nil && fn.Name() == "Done" && fn.Pkg() != nil && fn.Pkg().Path() == "context" {
						found = true // <-ctx.Done(): exits with cancellation
					}
				}
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(x.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					found = true // drains until the spawner closes the channel
				}
			}
		}
		return !found
	})
	return found
}

// namedOf unwraps pointers to the named type, nil for unnamed types.
func namedOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}
