package analysis

import (
	"strings"
	"testing"
)

func TestBaselineRoundTrip(t *testing.T) {
	diags := []Diagnostic{
		{Analyzer: "metricname", Path: "a/b.go", Line: 1, Col: 1, Message: "non-literal name"},
		{Analyzer: "metricname", Path: "a/b.go", Line: 9, Col: 4, Message: "non-literal name"},
		{Analyzer: "transport", Path: "c/d.go", Line: 2, Col: 2, Message: "raw dial"},
	}
	var buf strings.Builder
	if err := WriteBaseline(&buf, diags); err != nil {
		t.Fatal(err)
	}
	b, err := ParseBaseline(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("parse written baseline: %v\n%s", err, buf.String())
	}
	fresh, stale := b.Filter(diags)
	if len(fresh) != 0 || len(stale) != 0 {
		t.Fatalf("round trip: fresh=%v stale=%v, want none", fresh, stale)
	}
}

func TestBaselineFilterCountsAndStale(t *testing.T) {
	src := "# justified because reasons\n" +
		"2\tmetricname\ta/b.go\tnon-literal name\n" +
		"1\ttransport\tc/d.go\traw dial\n"
	b, err := ParseBaseline(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	diags := []Diagnostic{
		{Analyzer: "metricname", Path: "a/b.go", Line: 1, Message: "non-literal name"},
		{Analyzer: "metricname", Path: "a/b.go", Line: 5, Message: "non-literal name"},
		{Analyzer: "metricname", Path: "a/b.go", Line: 9, Message: "non-literal name"}, // exceeds count
		{Analyzer: "determinism", Path: "e/f.go", Line: 3, Message: "clock read"},      // not baselined
	}
	fresh, stale := b.Filter(diags)
	if len(fresh) != 2 {
		t.Fatalf("fresh = %v, want the over-count metricname and the determinism finding", fresh)
	}
	if fresh[0].Analyzer != "metricname" || fresh[0].Line != 9 {
		t.Errorf("first fresh = %+v, want the third metricname at line 9", fresh[0])
	}
	if fresh[1].Analyzer != "determinism" {
		t.Errorf("second fresh = %+v, want the determinism finding", fresh[1])
	}
	if len(stale) != 1 || !strings.Contains(stale[0], "transport") {
		t.Errorf("stale = %v, want the unmatched transport entry", stale)
	}
}

func TestBaselineFilterScoped(t *testing.T) {
	src := "1\tmetricname\ta/b.go\tnon-literal name\n" +
		"1\ttransport\tc/d.go\traw dial\n"
	b, err := ParseBaseline(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	// Only directory "a" was analyzed: the unmatched a/b.go entry is
	// stale, but the c/d.go entry is out of scope and must be silent.
	fresh, stale := b.FilterScoped(nil, func(analyzer, path string) bool {
		return strings.HasPrefix(path, "a/")
	})
	if len(fresh) != 0 {
		t.Fatalf("fresh = %v, want none", fresh)
	}
	if len(stale) != 1 || !strings.Contains(stale[0], "a/b.go") {
		t.Fatalf("stale = %v, want only the in-scope a/b.go entry", stale)
	}
	// Only the transport analyzer ran: the metricname entry must be
	// silent even though its directory was analyzed.
	_, stale = b.FilterScoped(nil, func(analyzer, path string) bool {
		return analyzer == "transport"
	})
	if len(stale) != 1 || !strings.Contains(stale[0], "c/d.go") {
		t.Fatalf("stale = %v, want only the transport c/d.go entry", stale)
	}
}

func TestBaselineParseErrors(t *testing.T) {
	for _, src := range []string{
		"not-a-count\tmetricname\ta.go\tmsg\n",
		"0\tmetricname\ta.go\tmsg\n",
		"1\tmetricname\tmissing-message\n",
	} {
		if _, err := ParseBaseline(strings.NewReader(src)); err == nil {
			t.Errorf("ParseBaseline(%q) should fail", src)
		}
	}
}

func TestLoadBaselineFileMissing(t *testing.T) {
	b, err := LoadBaselineFile("testdata/does-not-exist.baseline")
	if err != nil {
		t.Fatal(err)
	}
	fresh, stale := b.Filter([]Diagnostic{{Analyzer: "x", Path: "y.go", Message: "m"}})
	if len(fresh) != 1 || len(stale) != 0 {
		t.Fatalf("empty baseline: fresh=%v stale=%v", fresh, stale)
	}
}
