package callgraph

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// buildSingle type-checks one in-memory file (no imports) and builds its
// graph, returning the graph and the package for object lookups.
func buildSingle(t *testing.T, src string) (*Graph, *types.Package) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fix.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{}
	pkg, err := conf.Check("fix", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	g := Build(fset, []*Unit{{ImportPath: "fix", Files: []*ast.File{f}, Pkg: pkg, Info: info}})
	return g, pkg
}

// lookupFunc resolves a package-level function by name.
func lookupFunc(t *testing.T, pkg *types.Package, name string) *types.Func {
	t.Helper()
	fn, ok := pkg.Scope().Lookup(name).(*types.Func)
	if !ok {
		t.Fatalf("no function %s in %s", name, pkg.Path())
	}
	return fn
}

// edges returns every edge from caller to callee.
func edges(caller, callee *Node) []*Edge {
	var out []*Edge
	for _, e := range caller.Out {
		if e.Callee == callee {
			out = append(out, e)
		}
	}
	return out
}

const fixtureSrc = `package fix

type T struct{}

func (t *T) M() int { return f() }

type I interface{ M() int }

func f() int { return 1 }

func g() int {
	v := f
	n := v()
	n += func() int { return 2 }()
	var i I
	n += i.M()
	go f()
	defer f()
	return n
}
`

func TestBuildEdges(t *testing.T) {
	g, pkg := buildSingle(t, fixtureSrc)

	nf := g.NodeOf(lookupFunc(t, pkg, "f"))
	ng := g.NodeOf(lookupFunc(t, pkg, "g"))
	if nf == nil || ng == nil {
		t.Fatal("missing nodes for f or g")
	}
	if nf.Name != "fix.f" || ng.Name != "fix.g" {
		t.Errorf("names = %q, %q; want fix.f, fix.g", nf.Name, ng.Name)
	}
	if !nf.AddrTaken {
		t.Error("f must be address-taken (v := f)")
	}
	if ng.AddrTaken {
		t.Error("g is never referenced as a value")
	}

	// g→f: one dynamic edge (v()), one static go edge, one static defer
	// edge.
	gf := edges(ng, nf)
	if len(gf) != 3 {
		t.Fatalf("got %d g→f edges, want 3: %v", len(gf), gf)
	}
	var goEdge, deferEdge, dynEdge int
	for _, e := range gf {
		switch {
		case e.Go:
			goEdge++
			if e.Kind != Static {
				t.Errorf("go f() edge kind = %v, want Static", e.Kind)
			}
		case e.Defer:
			deferEdge++
		case e.Kind == Dynamic:
			dynEdge++
		default:
			t.Errorf("unexpected g→f edge %+v", e)
		}
	}
	if goEdge != 1 || deferEdge != 1 || dynEdge != 1 {
		t.Errorf("g→f edges go/defer/dyn = %d/%d/%d, want 1/1/1", goEdge, deferEdge, dynEdge)
	}

	// The immediately-invoked literal is its own node with a static edge
	// from g, and it is not address-taken.
	var lit *Node
	for _, n := range g.Nodes {
		if n.IsLit() && n.Name == "fix.g.func" {
			lit = n
		}
	}
	if lit == nil {
		t.Fatal("no node for g's function literal")
	}
	if lit.AddrTaken {
		t.Error("immediately-invoked literal must not be address-taken")
	}
	if le := edges(ng, lit); len(le) != 1 || le[0].Kind != Static {
		t.Errorf("g→lit edges = %v, want one static", le)
	}

	// i.M() dispatches through the interface to the only same-name,
	// same-signature concrete method, (*T).M; and (*T).M calls f.
	tObj := pkg.Scope().Lookup("T").Type().(*types.Named)
	m := tObj.Method(0)
	nm := g.NodeOf(m)
	if nm == nil {
		t.Fatal("missing node for (*T).M")
	}
	if nm.Name != "fix.(*T).M" {
		t.Errorf("method node name = %q, want fix.(*T).M", nm.Name)
	}
	if ie := edges(ng, nm); len(ie) != 1 || ie[0].Kind != Interface {
		t.Errorf("g→(*T).M edges = %v, want one interface edge", ie)
	}
	if me := edges(nm, nf); len(me) != 1 || me[0].Kind != Static {
		t.Errorf("(*T).M→f edges = %v, want one static", me)
	}
	// In edges mirror Out edges.
	if len(nf.In) != 4 {
		t.Errorf("f has %d in-edges, want 4 (M static, g dynamic/go/defer)", len(nf.In))
	}
}

// TestPackageLevelIIFE: a package-level immediately-invoked function
// literal has no caller node; Build must not panic on it, and the
// literal must stay a conservative dynamic-call candidate.
func TestPackageLevelIIFE(t *testing.T) {
	g, _ := buildSingle(t, `package fix

var x = func() int { return 1 }()

var y = func() func() int {
	inner := func() int { return 2 }
	return inner
}()
`)
	var lits []*Node
	for _, n := range g.Nodes {
		if n.IsLit() {
			lits = append(lits, n)
		}
	}
	if len(lits) != 3 {
		t.Fatalf("got %d literal nodes, want 3", len(lits))
	}
	for _, n := range lits {
		if !n.AddrTaken {
			t.Errorf("package-level literal %s must be address-taken (no caller node to edge from)", n.Name)
		}
		if len(n.In) != 0 {
			t.Errorf("package-level literal %s has %d in-edges, want 0", n.Name, len(n.In))
		}
	}
}

func TestBuildTestFileDetection(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fix_test.go", "package fix\nfunc h() {}\n", parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	pkg, err := (&types.Config{}).Check("fix", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	g := Build(fset, []*Unit{{ImportPath: "fix", Files: []*ast.File{f}, Pkg: pkg, Info: info}})
	n := g.NodeOf(lookupFunc(t, pkg, "h"))
	if n == nil || !g.InTestFile(n) {
		t.Errorf("h must be a node in a test file; node=%v", n)
	}
}

func TestEdgeKindString(t *testing.T) {
	for kind, want := range map[EdgeKind]string{Static: "static", Dynamic: "dynamic", Interface: "interface"} {
		if kind.String() != want {
			t.Errorf("EdgeKind(%d).String() = %q, want %q", kind, kind.String(), want)
		}
	}
}
