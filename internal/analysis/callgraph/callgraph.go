// Package callgraph builds a conservative whole-repo call graph over the
// packages squatvet loads, using only go/ast + go/types (the analysis
// engine's no-x/tools constraint).
//
// The graph is deliberately an over-approximation: a static call edge is
// added where the callee resolves to a declared function or method; a
// call through an interface value adds edges to every loaded concrete
// method with the same name and an identical signature; a call through a
// function value adds edges to every loaded function whose address is
// taken and whose signature is identical. Function literals get their own
// nodes (an immediately-invoked literal is a static callee of its
// enclosing function; any other literal is address-taken). Calls into
// packages outside the analyzed set additionally link the caller to any
// function values passed as arguments, so callback idioms like
// sort.Slice(x, less) keep the callback reachable.
//
// Over-approximation is the right polarity for the analyzers built on
// top: hotpath must prove the absence of allocation below //squat:hot
// roots, so a spurious edge can only produce a finding a human reviews,
// never hide one.
package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Unit is one type-checked package presented to Build. It mirrors the
// driver's Package without importing it (analysis imports callgraph, not
// the other way around).
type Unit struct {
	// ImportPath is the package's import path within the module.
	ImportPath string
	// Files are the parsed files type-checked together.
	Files []*ast.File
	// Pkg and Info are the go/types results for Files.
	Pkg  *types.Package
	Info *types.Info
}

// EdgeKind classifies how a call site was resolved to its callee.
type EdgeKind int

const (
	// Static is a direct call to a declared function, method, or an
	// immediately-invoked function literal.
	Static EdgeKind = iota
	// Dynamic is a call through a function value, resolved conservatively
	// by signature identity against every address-taken function.
	Dynamic
	// Interface is a call through an interface method, resolved
	// conservatively to every concrete method with the same name and
	// signature.
	Interface
)

func (k EdgeKind) String() string {
	switch k {
	case Static:
		return "static"
	case Dynamic:
		return "dynamic"
	case Interface:
		return "interface"
	}
	return "unknown"
}

// Edge is one resolved call: Caller invokes Callee at Site.
type Edge struct {
	Caller *Node
	Callee *Node
	// Site is the call expression, nil for synthetic edges (a function
	// value passed into an un-analyzed callee).
	Site *ast.CallExpr
	Kind EdgeKind
	// Go and Defer record that the call site was a go or defer statement.
	Go    bool
	Defer bool
}

// Node is one function in the graph: a declared function or method
// (Obj+Decl set) or a function literal (Lit set).
type Node struct {
	// Obj is the declared function's object; nil for literals.
	Obj *types.Func
	// Decl is the declaration; nil for literals.
	Decl *ast.FuncDecl
	// Lit is the literal; nil for declared functions.
	Lit *ast.FuncLit
	// Unit is the package the function's body lives in.
	Unit *Unit
	// Name is a stable human-readable identifier: pkg.Fn,
	// pkg.(*T).Method, or pkg.Enclosing.func for literals.
	Name string
	// AddrTaken reports that the function's value escapes a direct call
	// position, making it a candidate callee for every dynamic call of
	// identical signature.
	AddrTaken bool

	Out []*Edge
	In  []*Edge
}

// Body returns the function body, nil for bodyless declarations.
func (n *Node) Body() *ast.BlockStmt {
	if n.Lit != nil {
		return n.Lit.Body
	}
	if n.Decl != nil {
		return n.Decl.Body
	}
	return nil
}

// Pos returns the declaration or literal position.
func (n *Node) Pos() token.Pos {
	if n.Lit != nil {
		return n.Lit.Pos()
	}
	if n.Decl != nil {
		return n.Decl.Name.Pos()
	}
	return token.NoPos
}

// IsLit reports whether the node is a function literal.
func (n *Node) IsLit() bool { return n.Lit != nil }

// Graph is the whole-load call graph. Nodes is in deterministic order:
// declared functions in unit/file/declaration order, then literals in
// walk order, so traversals over Nodes are reproducible run to run.
type Graph struct {
	Fset  *token.FileSet
	Nodes []*Node
	// Memo lets analyzers cache whole-graph computations (e.g. the hot
	// transitive closure) across the per-package passes of one run.
	Memo map[string]any

	byObj map[*types.Func]*Node
	byLit map[*ast.FuncLit]*Node
}

// NodeOf returns the node for a declared function, nil when the function
// is outside the analyzed set.
func (g *Graph) NodeOf(fn *types.Func) *Node { return g.byObj[fn] }

// NodeOfLit returns the node for a function literal.
func (g *Graph) NodeOfLit(lit *ast.FuncLit) *Node { return g.byLit[lit] }

// InTestFile reports whether the node's body lives in a _test.go file.
func (g *Graph) InTestFile(n *Node) bool {
	return strings.HasSuffix(g.Fset.Position(n.Pos()).Filename, "_test.go")
}

// callCtx records how a call site was issued.
type callCtx struct {
	caller *Node
	site   *ast.CallExpr
	goC    bool
	defC   bool
}

// pendingCall is a dynamic or interface call awaiting conservative
// resolution after every node is known.
type pendingCall struct {
	ctx  callCtx
	kind EdgeKind
	// name is the method name for Interface calls.
	name string
	sig  *types.Signature
}

// pendingRef is a function value referenced by a pass-3 resolution step:
// either an argument handed to an un-analyzed callee, or a direct edge
// target discovered before its node existed.
type pendingRef struct {
	ctx callCtx
	lit *ast.FuncLit
	obj *types.Func
}

type builder struct {
	g            *Graph
	pending      []pendingCall
	pendingRefs  []pendingRef
	calleeIdents map[*ast.Ident]bool
	goCalls      map[*ast.CallExpr]bool
	deferCalls   map[*ast.CallExpr]bool
	invokedLits  map[*ast.FuncLit]callCtx
}

// Build constructs the graph over units. fset must be the file set the
// units were parsed with.
func Build(fset *token.FileSet, units []*Unit) *Graph {
	g := &Graph{
		Fset:  fset,
		Memo:  map[string]any{},
		byObj: map[*types.Func]*Node{},
		byLit: map[*ast.FuncLit]*Node{},
	}
	b := &builder{
		g:            g,
		calleeIdents: map[*ast.Ident]bool{},
		goCalls:      map[*ast.CallExpr]bool{},
		deferCalls:   map[*ast.CallExpr]bool{},
		invokedLits:  map[*ast.FuncLit]callCtx{},
	}
	// Pass 1: a node per declared function, in deterministic order.
	for _, u := range units {
		for _, f := range u.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, _ := u.Info.Defs[fd.Name].(*types.Func)
				if obj == nil || g.byObj[obj] != nil {
					continue
				}
				n := &Node{Obj: obj, Decl: fd, Unit: u, Name: declName(u, fd)}
				g.Nodes = append(g.Nodes, n)
				g.byObj[obj] = n
			}
		}
	}
	// Pass 2: walk bodies; static edges, literal nodes, pending dynamic
	// and interface calls, direct-callee ident bookkeeping.
	for _, u := range units {
		for _, f := range u.Files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok {
					if fd.Body == nil {
						continue
					}
					obj, _ := u.Info.Defs[fd.Name].(*types.Func)
					if root := g.byObj[obj]; root != nil {
						b.walk(u, root, fd.Body)
					}
					continue
				}
				// Package-level var initializers may hold literals and calls;
				// walk them with no caller node (init-time calls carry no
				// hot-path or lifecycle obligations, but the literals must
				// exist as address-taken candidates).
				b.walk(u, nil, d)
			}
		}
	}
	// Pass 2.5: every remaining use of a function identifier outside a
	// direct call position takes its address.
	for _, u := range units {
		for _, f := range u.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok || b.calleeIdents[id] {
					return true
				}
				if fn, ok := u.Info.Uses[id].(*types.Func); ok {
					if node := g.byObj[fn]; node != nil {
						node.AddrTaken = true
					}
				}
				return true
			})
		}
	}
	// Pass 3: resolve deferred direct references, then conservative
	// dynamic and interface calls against the now-complete node set.
	for _, ref := range b.pendingRefs {
		var target *Node
		if ref.lit != nil {
			target = g.byLit[ref.lit]
		} else if ref.obj != nil {
			target = g.byObj[ref.obj]
		}
		if target != nil && ref.ctx.caller != nil {
			addEdge(ref.ctx, target, Dynamic)
		}
	}
	var taken []*Node
	for _, n := range g.Nodes {
		if n.AddrTaken && nodeSig(n) != nil {
			taken = append(taken, n)
		}
	}
	for _, p := range b.pending {
		if p.ctx.caller == nil || p.sig == nil {
			continue
		}
		switch p.kind {
		case Dynamic:
			for _, cand := range taken {
				if types.Identical(nodeSig(cand), p.sig) {
					addEdge(p.ctx, cand, Dynamic)
				}
			}
		case Interface:
			for _, cand := range g.Nodes {
				sig := nodeSig(cand)
				if sig == nil || sig.Recv() == nil || types.IsInterface(sig.Recv().Type()) {
					continue
				}
				if cand.Obj != nil && cand.Obj.Name() == p.name && types.Identical(sig, p.sig) {
					addEdge(p.ctx, cand, Interface)
				}
			}
		}
	}
	return g
}

// walk visits one function body (or package-level declaration), creating
// literal nodes and classifying every call site.
func (b *builder) walk(u *Unit, root *Node, body ast.Node) {
	cur := []*Node{root}
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if _, ok := top.(*ast.FuncLit); ok {
				cur = cur[:len(cur)-1]
			}
			return true
		}
		stack = append(stack, n)
		switch x := n.(type) {
		case *ast.GoStmt:
			b.goCalls[x.Call] = true
		case *ast.DeferStmt:
			b.deferCalls[x.Call] = true
		case *ast.FuncLit:
			ln := b.newLitNode(u, cur[len(cur)-1], x)
			// A package-level IIFE (`var x = func() ... ()`) is invoked with
			// no caller node; mark it address-taken so it stays a
			// conservative dynamic-call candidate instead of adding an edge
			// from a nil caller.
			if ctx, ok := b.invokedLits[x]; ok && ctx.caller != nil {
				addEdge(ctx, ln, Static)
			} else {
				ln.AddrTaken = true
			}
			cur = append(cur, ln)
		case *ast.CallExpr:
			b.call(u, cur[len(cur)-1], x)
		}
		return true
	})
}

func (b *builder) newLitNode(u *Unit, enclosing *Node, lit *ast.FuncLit) *Node {
	name := u.Pkg.Name() + ".func"
	if enclosing != nil {
		name = enclosing.Name + ".func"
	}
	n := &Node{Lit: lit, Unit: u, Name: name}
	b.g.Nodes = append(b.g.Nodes, n)
	b.g.byLit[lit] = n
	return n
}

// call classifies one call site under caller cur (nil at package level).
func (b *builder) call(u *Unit, cur *Node, call *ast.CallExpr) {
	ctx := callCtx{caller: cur, site: call, goC: b.goCalls[call], defC: b.deferCalls[call]}
	if tv, ok := u.Info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion, not a call
	}
	fun := ast.Unparen(call.Fun)
	switch ix := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(ix.X) // generic instantiation f[T](...)
	case *ast.IndexListExpr:
		fun = ast.Unparen(ix.X)
	}
	switch f := fun.(type) {
	case *ast.FuncLit:
		// The literal's node is created when the walk descends into it;
		// remember the invocation so it becomes a static callee rather
		// than an address-taken value.
		b.invokedLits[f] = ctx
	case *ast.Ident:
		switch obj := u.Info.Uses[f].(type) {
		case *types.Func:
			b.calleeIdents[f] = true
			b.staticEdge(u, ctx, obj)
		case *types.Builtin, *types.TypeName, *types.Nil, nil:
			// len/append/..., conversions through local type names, nil.
		default:
			b.dynamic(u, ctx, call)
		}
	case *ast.SelectorExpr:
		if seln, ok := u.Info.Selections[f]; ok {
			switch seln.Kind() {
			case types.MethodVal, types.MethodExpr:
				fn, _ := seln.Obj().(*types.Func)
				if fn == nil {
					return
				}
				b.calleeIdents[f.Sel] = true
				if types.IsInterface(seln.Recv()) {
					sig, _ := fn.Type().(*types.Signature)
					b.pending = append(b.pending, pendingCall{ctx: ctx, kind: Interface, name: fn.Name(), sig: sig})
					return
				}
				b.staticEdge(u, ctx, fn)
			case types.FieldVal:
				b.dynamic(u, ctx, call)
			}
			return
		}
		// Package-qualified pkg.Fn or pkg.Var.
		switch obj := u.Info.Uses[f.Sel].(type) {
		case *types.Func:
			b.calleeIdents[f.Sel] = true
			b.staticEdge(u, ctx, obj)
		case *types.Var:
			b.dynamic(u, ctx, call)
		}
	default:
		b.dynamic(u, ctx, call)
	}
}

// staticEdge links ctx to fn's node. When fn lives outside the analyzed
// set the call is treated as a callback boundary: any function value
// among the arguments gains a conservative dynamic edge from the caller.
func (b *builder) staticEdge(u *Unit, ctx callCtx, fn *types.Func) {
	if node := b.g.byObj[fn]; node != nil {
		if ctx.caller != nil {
			addEdge(ctx, node, Static)
		}
		return
	}
	if ctx.caller == nil || ctx.site == nil {
		return
	}
	for _, arg := range ctx.site.Args {
		arg = ast.Unparen(arg)
		if lit, ok := arg.(*ast.FuncLit); ok {
			b.pendingRefs = append(b.pendingRefs, pendingRef{ctx: ctx, lit: lit})
			continue
		}
		var obj types.Object
		switch a := arg.(type) {
		case *ast.Ident:
			obj = u.Info.Uses[a]
		case *ast.SelectorExpr:
			obj = u.Info.Uses[a.Sel]
		}
		if afn, ok := obj.(*types.Func); ok {
			b.pendingRefs = append(b.pendingRefs, pendingRef{ctx: ctx, obj: afn})
			continue
		}
		// A func-typed variable handed to an un-analyzed callee: treat as
		// a dynamic call of that signature.
		if t := u.Info.TypeOf(arg); t != nil {
			if sig, ok := t.Underlying().(*types.Signature); ok {
				b.pending = append(b.pending, pendingCall{ctx: ctx, kind: Dynamic, sig: sig})
			}
		}
	}
}

// dynamic records a call through a function value for pass-3 resolution.
func (b *builder) dynamic(u *Unit, ctx callCtx, call *ast.CallExpr) {
	if ctx.caller == nil {
		return
	}
	t := u.Info.TypeOf(call.Fun)
	if t == nil {
		return
	}
	if sig, ok := t.Underlying().(*types.Signature); ok {
		b.pending = append(b.pending, pendingCall{ctx: ctx, kind: Dynamic, sig: sig})
	}
}

func addEdge(ctx callCtx, callee *Node, kind EdgeKind) {
	e := &Edge{Caller: ctx.caller, Callee: callee, Site: ctx.site, Kind: kind, Go: ctx.goC, Defer: ctx.defC}
	ctx.caller.Out = append(ctx.caller.Out, e)
	callee.In = append(callee.In, e)
}

// nodeSig returns the node's signature for identity comparison, nil when
// the node is generic (type-parameterized signatures are never identical
// across instantiations, so they are excluded from conservative
// matching rather than silently mismatched).
func nodeSig(n *Node) *types.Signature {
	var sig *types.Signature
	if n.Lit != nil {
		sig, _ = n.Unit.Info.TypeOf(n.Lit).(*types.Signature)
	} else if n.Obj != nil {
		sig, _ = n.Obj.Type().(*types.Signature)
	}
	if sig != nil && (sig.TypeParams().Len() > 0 || sig.RecvTypeParams().Len() > 0) {
		return nil
	}
	return sig
}

// declName renders pkg.Fn, pkg.T.Method or pkg.(*T).Method.
func declName(u *Unit, fd *ast.FuncDecl) string {
	pkg := u.Pkg.Name()
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return pkg + "." + fd.Name.Name
	}
	return pkg + "." + recvString(fd.Recv.List[0].Type) + "." + fd.Name.Name
}

func recvString(e ast.Expr) string {
	switch t := ast.Unparen(e).(type) {
	case *ast.StarExpr:
		return "(*" + recvBase(t.X) + ")"
	default:
		return recvBase(e)
	}
}

// recvBase names the receiver's base type, dropping type parameters.
func recvBase(e ast.Expr) string {
	switch t := ast.Unparen(e).(type) {
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr:
		return recvBase(t.X)
	case *ast.IndexListExpr:
		return recvBase(t.X)
	}
	return "?"
}
