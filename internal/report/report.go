// Package report provides the table and series formatting shared by the
// experiment drivers, the cmd/ binaries, and the benchmark harness: every
// paper table is printed as an aligned ASCII table and every figure as a
// labelled data series, so paperbench output can be diffed run to run.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple aligned-text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends one row; values are stringified with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Render(&sb)
	return sb.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Series is a labelled (x, y) data series standing in for a figure.
type Series struct {
	Title  string
	XLabel string
	YLabel string
	X      []string
	Y      []float64
}

// NewSeries creates a series.
func NewSeries(title, xlabel, ylabel string) *Series {
	return &Series{Title: title, XLabel: xlabel, YLabel: ylabel}
}

// Add appends one point.
func (s *Series) Add(x string, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Render writes the series with a proportional ASCII bar per point.
func (s *Series) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", s.Title)
	if s.XLabel != "" || s.YLabel != "" {
		fmt.Fprintf(w, "   (%s vs %s)\n", s.YLabel, s.XLabel)
	}
	maxY := 0.0
	maxX := 0
	for i, y := range s.Y {
		if y > maxY {
			maxY = y
		}
		if len(s.X[i]) > maxX {
			maxX = len(s.X[i])
		}
	}
	for i := range s.X {
		bar := ""
		if maxY > 0 {
			n := int(s.Y[i] / maxY * 40)
			bar = strings.Repeat("#", n)
		}
		fmt.Fprintf(w, "%s  %10.3f  %s\n", pad(s.X[i], maxX), s.Y[i], bar)
	}
}

// String renders the series to a string.
func (s *Series) String() string {
	var sb strings.Builder
	s.Render(&sb)
	return sb.String()
}

// CDF converts sorted per-item values into accumulated-percentage points,
// the transform behind the paper's Figures 3, 5 and 11.
func CDF(values []int) []float64 {
	total := 0
	for _, v := range values {
		total += v
	}
	out := make([]float64, len(values))
	run := 0
	for i, v := range values {
		run += v
		if total > 0 {
			out[i] = float64(run) / float64(total) * 100
		}
	}
	return out
}
