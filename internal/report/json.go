package report

import (
	"encoding/json"
	"io"
)

// tableJSON and seriesJSON are the machine-readable forms of the
// artifacts, so paperbench output can feed plotting tools directly.
type tableJSON struct {
	Kind    string     `json:"kind"`
	Title   string     `json:"title"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
}

type seriesJSON struct {
	Kind   string    `json:"kind"`
	Title  string    `json:"title"`
	XLabel string    `json:"x_label,omitempty"`
	YLabel string    `json:"y_label,omitempty"`
	X      []string  `json:"x"`
	Y      []float64 `json:"y"`
}

// MarshalJSON implements json.Marshaler.
func (t *Table) MarshalJSON() ([]byte, error) {
	rows := t.Rows
	if rows == nil {
		rows = [][]string{}
	}
	return json.Marshal(tableJSON{Kind: "table", Title: t.Title, Headers: t.Headers, Rows: rows})
}

// MarshalJSON implements json.Marshaler.
func (s *Series) MarshalJSON() ([]byte, error) {
	x, y := s.X, s.Y
	if x == nil {
		x = []string{}
	}
	if y == nil {
		y = []float64{}
	}
	return json.Marshal(seriesJSON{Kind: "series", Title: s.Title, XLabel: s.XLabel, YLabel: s.YLabel, X: x, Y: y})
}

// WriteJSON encodes any artifact (Table or Series) to w as one JSON value.
func WriteJSON(w io.Writer, artifact any) error {
	enc := json.NewEncoder(w)
	return enc.Encode(artifact)
}
