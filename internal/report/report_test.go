package report

import (
	"math"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Demo", "Brand", "Count", "Rate")
	tb.AddRow("paypal", 12, 0.5)
	tb.AddRow("facebook", 3, 0.25)
	out := tb.String()
	if !strings.Contains(out, "== Demo ==") {
		t.Error("title missing")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	if !strings.Contains(lines[3], "paypal") || !strings.Contains(lines[3], "0.500") {
		t.Errorf("row rendering: %q", lines[3])
	}
	// Columns aligned: "Count" position in header matches "12" column.
	if strings.Index(lines[1], "Count") > strings.Index(lines[3], "12")+6 {
		t.Error("columns misaligned")
	}
}

func TestTableEmptyRows(t *testing.T) {
	tb := NewTable("Empty", "A")
	out := tb.String()
	if !strings.Contains(out, "A") {
		t.Error("header missing in empty table")
	}
}

func TestSeriesRender(t *testing.T) {
	s := NewSeries("Fig X", "type", "count")
	s.Add("combo", 100)
	s.Add("typo", 50)
	s.Add("bits", 0)
	out := s.String()
	if !strings.Contains(out, "Fig X") || !strings.Contains(out, "combo") {
		t.Errorf("series render: %q", out)
	}
	// Bar lengths proportional: combo bar longer than typo's.
	lines := strings.Split(out, "\n")
	var comboBar, typoBar int
	for _, l := range lines {
		if strings.HasPrefix(l, "combo") {
			comboBar = strings.Count(l, "#")
		}
		if strings.HasPrefix(l, "typo") {
			typoBar = strings.Count(l, "#")
		}
	}
	if comboBar <= typoBar {
		t.Errorf("bars not proportional: combo=%d typo=%d", comboBar, typoBar)
	}
}

func TestCDF(t *testing.T) {
	got := CDF([]int{50, 30, 20})
	want := []float64{50, 80, 100}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("CDF = %v, want %v", got, want)
		}
	}
	if out := CDF(nil); len(out) != 0 {
		t.Fatal("CDF(nil) not empty")
	}
	if out := CDF([]int{0, 0}); out[1] != 0 {
		t.Fatal("CDF of zeros not zero")
	}
}

func TestTableJSON(t *testing.T) {
	tb := NewTable("J", "A", "B")
	tb.AddRow("x", 1)
	var buf strings.Builder
	if err := WriteJSON(&buf, tb); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"kind":"table"`, `"title":"J"`, `"x"`, `"1"`} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON missing %s: %s", want, out)
		}
	}
}

func TestSeriesJSON(t *testing.T) {
	s := NewSeries("S", "x", "y")
	s.Add("a", 2.5)
	var buf strings.Builder
	if err := WriteJSON(&buf, s); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"kind":"series"`, `"a"`, `2.5`} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON missing %s: %s", want, out)
		}
	}
}

func TestEmptyJSONArrays(t *testing.T) {
	var buf strings.Builder
	if err := WriteJSON(&buf, NewTable("E", "H")); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "null") {
		t.Errorf("empty table marshals null: %s", buf.String())
	}
}
