package obs

import (
	"context"
	"sync"
	"time"
)

// Span is one timed region of a pipeline run. Spans nest via context:
// StartSpan under an active span attaches a child, so a full round records
// as a tree (round -> probe/match/crawl/classify -> per-batch children).
// A root span whose context carries a Recorder is recorded there on End.
type Span struct {
	mu       sync.Mutex
	name     string
	start    time.Time
	end      time.Time
	err      string
	attrs    map[string]string
	children []*Span
	rec      *Recorder // set on roots only
	ended    bool
}

type spanKey struct{}
type recorderKey struct{}

// WithRecorder returns a context whose future root spans are recorded in
// rec when they end.
func WithRecorder(ctx context.Context, rec *Recorder) context.Context {
	if rec == nil {
		return ctx
	}
	return context.WithValue(ctx, recorderKey{}, rec)
}

// SpanFrom returns the active span of the context, or nil.
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// StartSpan begins a span. If the context holds an active span the new one
// becomes its child; otherwise it is a root, recorded (on End) into the
// context's Recorder if one was attached via WithRecorder. Spans created
// from a bare context are detached but still usable — instrumented code
// never needs to check whether tracing is on.
//
// Child attachment is lock-protected and allowed even on an ended parent
// (a straggling worker's sub-span still belongs in the trace); recorder
// snapshots taken between End and the late attach simply miss the child,
// they never observe a torn slice.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	s := &Span{name: name, start: time.Now()}
	if parent := SpanFrom(ctx); parent != nil {
		parent.mu.Lock()
		parent.children = append(parent.children, s)
		parent.mu.Unlock()
	} else if rec, ok := ctx.Value(recorderKey{}).(*Recorder); ok {
		s.rec = rec
	}
	return context.WithValue(ctx, spanKey{}, s), s
}

// SetAttr attaches a key=value annotation (candidate counts, batch sizes).
// Calls after End are dropped: an ended span may already be snapshotted
// from the recorder, and a late worker-goroutine write must not make two
// reads of the same trace disagree.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return
	}
	if s.attrs == nil {
		s.attrs = map[string]string{}
	}
	s.attrs[key] = value
}

// Fail tags the span with an error without ending it. Like SetAttr,
// calls after End are dropped.
func (s *Span) Fail(err error) {
	if s == nil || err == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.err = err.Error()
	}
	s.mu.Unlock()
}

// End closes the span; a root span is recorded into its Recorder. End is
// idempotent.
func (s *Span) End() { s.EndWith(nil) }

// EndWith tags the span with err (if non-nil) and ends it.
func (s *Span) EndWith(err error) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.end = time.Now()
	if err != nil {
		s.err = err.Error()
	}
	rec := s.rec
	s.mu.Unlock()
	if rec != nil {
		rec.add(s)
	}
}

// Name returns the span name.
func (s *Span) Name() string { return s.name }

// Err returns the tagged error message, if any.
func (s *Span) Err() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Duration returns the span's elapsed time (to now if still open).
func (s *Span) Duration() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return s.end.Sub(s.start)
	}
	return time.Since(s.start)
}

// Children returns a snapshot of the direct child spans.
func (s *Span) Children() []*Span {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// SpanSnapshot is the JSON-able form of a span tree.
type SpanSnapshot struct {
	Name       string            `json:"name"`
	Start      time.Time         `json:"start"`
	DurationMS float64           `json:"duration_ms"`
	InProgress bool              `json:"in_progress,omitempty"`
	Err        string            `json:"error,omitempty"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Children   []SpanSnapshot    `json:"children,omitempty"`
}

// Snapshot captures the span tree. Safe while descendants are still
// running; open spans report their duration so far and in_progress=true.
func (s *Span) Snapshot() SpanSnapshot {
	s.mu.Lock()
	snap := SpanSnapshot{
		Name:       s.name,
		Start:      s.start,
		InProgress: !s.ended,
		Err:        s.err,
	}
	if s.ended {
		snap.DurationMS = float64(s.end.Sub(s.start)) / float64(time.Millisecond)
	} else {
		snap.DurationMS = float64(time.Since(s.start)) / float64(time.Millisecond)
	}
	if len(s.attrs) > 0 {
		snap.Attrs = make(map[string]string, len(s.attrs))
		for k, v := range s.attrs {
			snap.Attrs[k] = v
		}
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		snap.Children = append(snap.Children, c.Snapshot())
	}
	return snap
}

// Recorder keeps the last N root spans in a ring buffer, so the debug
// endpoint can dump recent pipeline rounds without unbounded growth.
type Recorder struct {
	mu    sync.Mutex
	buf   []*Span
	next  int
	total int64
}

// NewRecorder returns a recorder holding up to n root spans (default 32).
func NewRecorder(n int) *Recorder {
	if n <= 0 {
		n = 32
	}
	return &Recorder{buf: make([]*Span, 0, n)}
}

func (r *Recorder) add(root *Span) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, root)
	} else {
		r.buf[r.next] = root
		r.next = (r.next + 1) % cap(r.buf)
	}
	r.total++
}

// Total returns the number of root spans ever recorded.
func (r *Recorder) Total() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Traces returns snapshots of the retained root spans, newest first.
func (r *Recorder) Traces() []SpanSnapshot {
	r.mu.Lock()
	roots := make([]*Span, 0, len(r.buf))
	// Oldest-first reconstruction of the ring, then reverse.
	for i := 0; i < len(r.buf); i++ {
		roots = append(roots, r.buf[(r.next+i)%len(r.buf)])
	}
	r.mu.Unlock()
	out := make([]SpanSnapshot, 0, len(roots))
	for i := len(roots) - 1; i >= 0; i-- {
		out = append(out, roots[i].Snapshot())
	}
	return out
}
