package obs

import "time"

// Stopwatch measures elapsed wall time for metric observation. The
// deterministic scan/score packages (internal/squat, internal/core,
// internal/deltascan, internal/ml) must not read the wall clock directly
// — squatvet's determinism analyzer enforces it, because a clock read on
// a scan path is one refactor away from leaking into a verdict, a sort
// key or a cache fingerprint and silently breaking the byte-identical
// serial/parallel/delta equivalence the golden tests pin. obs owns the
// only sanctioned stopwatch: elapsed time flows one way, into metrics.
//
// The zero Stopwatch is not started; call StartStopwatch. Reading an
// unstarted stopwatch yields a huge elapsed value rather than a panic,
// matching the package's tolerance for misuse on hot paths.
type Stopwatch struct {
	start time.Time
}

// StartStopwatch begins timing now.
//
//squat:hot
func StartStopwatch() Stopwatch { return Stopwatch{start: time.Now()} }

// Elapsed returns the wall time since the stopwatch started.
//
//squat:hot
func (s Stopwatch) Elapsed() time.Duration { return time.Since(s.start) }

// Seconds returns the elapsed time in seconds (throughput gauges).
func (s Stopwatch) Seconds() float64 { return s.Elapsed().Seconds() }

// Millis returns the elapsed time in milliseconds; pair with
// MillisBuckets histograms.
func (s Stopwatch) Millis() float64 { return float64(s.Elapsed()) / float64(time.Millisecond) }

// Micros returns the elapsed time in microseconds; pair with
// MicrosBuckets histograms.
//
//squat:hot
func (s Stopwatch) Micros() float64 { return float64(s.Elapsed()) / float64(time.Microsecond) }
