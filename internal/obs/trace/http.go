package trace

import (
	"encoding/json"
	"net/http"
)

// VerdictHandler serves per-domain verdict provenance on the debug mux
// (mounted at /debug/verdict by the CLIs). GET ?domain=NAME returns the
// evidence record as indented JSON, or the rendered text trail with
// &format=text. get resolves a domain to its record — typically
// core.Pipeline.Lookup, which falls back to recomputing matcher evidence
// for domains outside the always-on flagged set.
func VerdictHandler(get func(domain string) (*Record, bool)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		domain := r.URL.Query().Get("domain")
		if domain == "" {
			http.Error(w, "missing ?domain= parameter", http.StatusBadRequest)
			return
		}
		rec, ok := get(domain)
		if !ok || rec == nil {
			http.Error(w, "no provenance for domain "+domain, http.StatusNotFound)
			return
		}
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_, _ = w.Write([]byte(rec.Render()))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(rec)
	})
}
