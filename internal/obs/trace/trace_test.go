package trace

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestLoggerJSONLines(t *testing.T) {
	var buf bytes.Buffer
	log := NewLogger(&buf, LevelDebug)
	log.SetClock(func() float64 { return 1.5 })

	log.Info("scan.started", Int("records", 10), String("mode", "full"))
	log.Component("crawler").Warn("crawler.fetch.retry", String("domain", "a.com"))

	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2: %q", len(lines), buf.String())
	}
	var ev Event
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatalf("line 0 not JSON: %v", err)
	}
	if ev.Name != "scan.started" || ev.Level != "info" || ev.TMS != 1.5 {
		t.Errorf("line 0 = %+v", ev)
	}
	if got := ev.Attrs["records"]; got != float64(10) {
		t.Errorf("records attr = %v", got)
	}
	if err := json.Unmarshal([]byte(lines[1]), &ev); err != nil {
		t.Fatalf("line 1 not JSON: %v", err)
	}
	if ev.Component != "crawler" || ev.Level != "warn" {
		t.Errorf("line 1 = %+v", ev)
	}
	if n := log.Emitted(); n != 2 {
		t.Errorf("Emitted = %d, want 2", n)
	}
}

func TestLoggerLevelFilterAndNil(t *testing.T) {
	var buf bytes.Buffer
	log := NewLogger(&buf, LevelWarn)
	log.Debug("drop.debug")
	log.Info("drop.info")
	log.Error("keep.error")
	if n := log.Emitted(); n != 1 {
		t.Errorf("Emitted = %d, want 1 (level filter)", n)
	}

	// Nil receivers and nil component views must be safe no-ops.
	var nilLog *Logger
	nilLog.Info("ignored.event")
	nilLog.Component("x").Warn("ignored.event")
	nilLog.AttachCollector(nil)
	if nilLog.Emitted() != 0 {
		t.Error("nil logger emitted events")
	}
}

func TestLoggerEventAttribution(t *testing.T) {
	col := NewCollector(1)
	log := NewLogger(nil, LevelDebug) // no sink: attribution must still work
	log.AttachCollector(col)

	log.Warn("crawler.fetch.retry", String("domain", "bad.com"), Int("attempt", 2))
	log.Warn("crawler.fetch.retry", Int("attempt", 3)) // no domain attr: not attributed

	evs := col.EventsFor("bad.com")
	if len(evs) != 1 {
		t.Fatalf("EventsFor = %d events, want 1", len(evs))
	}
	if evs[0].TMS != 0 {
		t.Errorf("attributed event TMS = %v, want 0 (records must not carry wall time)", evs[0].TMS)
	}
	if evs[0].Name != "crawler.fetch.retry" || evs[0].Attrs["attempt"] != 2 {
		t.Errorf("attributed event = %+v", evs[0])
	}
}

func TestCollectorSamplingIsHashBased(t *testing.T) {
	col := NewCollector(4)
	domains := []string{"a.com", "b.com", "c.com", "d.com", "e.com", "f.com", "g.com", "h.com"}

	// The sampled subset must depend only on the domain name, never on
	// call order — that is what makes provenance worker-count-invariant.
	var want []string
	for _, d := range domains {
		if col.Sampled(d) {
			want = append(want, d)
		}
	}
	for i := len(domains) - 1; i >= 0; i-- { // reversed order
		col.ObserveScan(domains[i], false)
	}
	marks := col.ScanMarks()
	var got []string
	for _, m := range marks {
		got = append(got, m.Domain)
	}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("sampled %v, want %v", got, want)
	}
	sampled, matched := col.ScanStats()
	if int(sampled) != len(want) || matched != 0 {
		t.Errorf("ScanStats = (%d, %d), want (%d, 0)", sampled, matched, len(want))
	}
}

func TestCollectorSamplingDisabled(t *testing.T) {
	col := NewCollector(-1)
	col.ObserveScan("a.com", true)
	if s, _ := col.ScanStats(); s != 0 {
		t.Errorf("disabled sampling still observed %d scans", s)
	}
	// Records and events must still work with sampling off.
	col.Put(&Record{Schema: SchemaVersion, Domain: "a.com"})
	if _, ok := col.Get("a.com"); !ok {
		t.Error("Put/Get broken with sampling disabled")
	}

	var nilCol *Collector
	nilCol.ObserveScan("a.com", true)
	nilCol.Put(&Record{Domain: "x"})
	if nilCol.Sampled("a.com") {
		t.Error("nil collector sampled a domain")
	}
}

func TestCollectorRecordsSorted(t *testing.T) {
	col := NewCollector(0)
	for _, d := range []string{"zeta.com", "alpha.com", "mid.com"} {
		col.Put(&Record{Schema: SchemaVersion, Domain: d})
	}
	recs := col.Records()
	if len(recs) != 3 || recs[0].Domain != "alpha.com" || recs[2].Domain != "zeta.com" {
		t.Errorf("Records not sorted: %v", recs)
	}
}

func TestCollectorConcurrent(t *testing.T) {
	col := NewCollector(2)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				d := string(rune('a'+w)) + ".com"
				col.ObserveScan(d, i%2 == 0)
				col.AddEvent(d, Event{Name: "x.y"})
				col.Put(&Record{Schema: SchemaVersion, Domain: d})
			}
		}(w)
	}
	wg.Wait()
	if len(col.Records()) != 8 {
		t.Errorf("Records = %d, want 8", len(col.Records()))
	}
}

func TestStoreRoundTrip(t *testing.T) {
	col := NewCollector(4)
	for _, d := range []string{"a.com", "b.com", "c.com", "d.com", "e.com", "f.com"} {
		col.ObserveScan(d, true)
	}
	rec := &Record{
		Schema: SchemaVersion,
		Domain: "pypal.com",
		Matcher: &MatcherEvidence{
			Rule: "typo.edit_table", Type: "typo", Brand: "paypal.com",
			Label: "pypal", TLD: "com", Skeleton: "pypal", BrandSkeleton: "paypal",
			EditDistance: 1,
		},
		Cache: &CacheEvidence{Source: "fresh", Epoch: 1, Fingerprint: "00deadbeef00cafe"},
		Profiles: []ProfileEvidence{{
			Profile: "web",
			Crawl:   &CrawlEvidence{Live: true, StatusCode: 200},
			ML:      &MLEvidence{Score: 0.875, Trees: 10, VotesFor: 9, Margin: 0.8, Dim: 32},
			Verdict: &VerdictEvidence{Flagged: true, Score: 0.875, Confirmed: true},
		}},
	}
	col.Put(rec)

	var buf bytes.Buffer
	if err := col.WriteStore(&buf); err != nil {
		t.Fatalf("WriteStore: %v", err)
	}
	st, err := ReadStore(&buf)
	if err != nil {
		t.Fatalf("ReadStore: %v", err)
	}
	if st.SampleEvery != 4 {
		t.Errorf("SampleEvery = %d, want 4", st.SampleEvery)
	}
	if len(st.Records) != 1 {
		t.Fatalf("Records = %d, want 1", len(st.Records))
	}
	got, ok := st.Lookup("pypal.com")
	if !ok {
		t.Fatal("Lookup miss")
	}
	wantJSON, _ := json.Marshal(rec)
	gotJSON, _ := json.Marshal(got)
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Errorf("record round-trip mismatch:\n got %s\nwant %s", gotJSON, wantJSON)
	}
	if len(st.Marks) == 0 {
		t.Error("no scan marks survived the round trip")
	}
}

func TestReadStoreRejectsGarbage(t *testing.T) {
	if _, err := ReadStore(strings.NewReader("not gzip")); err == nil {
		t.Error("plain text accepted")
	}
}

func TestRenderDeterministic(t *testing.T) {
	rec := &Record{
		Schema: SchemaVersion,
		Domain: "pypal.com",
		Matcher: &MatcherEvidence{
			Rule: "typo.edit_table", Type: "typo", Brand: "paypal.com",
			Label: "pypal", TLD: "com", Skeleton: "pypal", BrandSkeleton: "paypal",
			EditDistance: 1,
		},
		Cache: &CacheEvidence{Source: "cache", Epoch: 2, Fingerprint: "00deadbeef00cafe"},
		Profiles: []ProfileEvidence{{
			Profile: "web",
			Crawl:   &CrawlEvidence{Live: true, StatusCode: 200, Redirects: 1, FinalHost: "pypal.com"},
			ML:      &MLEvidence{Score: 0.875, Trees: 10, VotesFor: 9, Margin: 0.8, Dim: 32},
			Verdict: &VerdictEvidence{Flagged: true, Score: 0.875, Confirmed: true},
		}},
		Events: []Event{{Level: "warn", Component: "crawler", Name: "crawler.fetch.retry",
			Attrs: map[string]any{"domain": "pypal.com", "attempt": 2}}},
	}
	want := `domain: pypal.com
matcher: rule=typo.edit_table type=typo brand=paypal.com label=pypal tld=com skeleton=pypal brand_skeleton=paypal edit_distance=1
cache: source=cache epoch=2 fingerprint=00deadbeef00cafe
profile web:
  crawl: live=true status=200 redirects=1 final_host=pypal.com retries=0 failures=0
  ml: score=0.875 trees=10 votes_for=9 margin=0.8 dim=32 nonzero=0
  verdict: FLAGGED score=0.875 confirmed=true
events: 1
  [warn] crawler crawler.fetch.retry attempt=2 domain=pypal.com
`
	if got := rec.Render(); got != want {
		t.Errorf("Render mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
	if got := rec.Render(); got != want {
		t.Error("Render not stable across calls")
	}
}

func TestVerdictHandler(t *testing.T) {
	rec := &Record{Schema: SchemaVersion, Domain: "a.com",
		Matcher: &MatcherEvidence{Rule: "none", Type: "none", Label: "a", TLD: "com", Skeleton: "a", EditDistance: -1}}
	h := VerdictHandler(func(d string) (*Record, bool) {
		if d == "a.com" {
			return rec, true
		}
		return nil, false
	})

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/verdict?domain=a.com", nil))
	if rr.Code != 200 {
		t.Fatalf("status = %d", rr.Code)
	}
	var got Record
	if err := json.Unmarshal(rr.Body.Bytes(), &got); err != nil {
		t.Fatalf("body not JSON: %v", err)
	}
	if got.Domain != "a.com" {
		t.Errorf("domain = %q", got.Domain)
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/verdict?domain=a.com&format=text", nil))
	if rr.Code != 200 || !strings.HasPrefix(rr.Body.String(), "domain: a.com\n") {
		t.Errorf("text format: status=%d body=%q", rr.Code, rr.Body.String())
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/verdict?domain=miss.com", nil))
	if rr.Code != 404 {
		t.Errorf("miss status = %d, want 404", rr.Code)
	}
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/verdict", nil))
	if rr.Code != 400 {
		t.Errorf("no-domain status = %d, want 400", rr.Code)
	}
}
