// Package trace is the verdict-provenance layer of the observability
// stack: it explains *why* a domain was flagged, not just how long the
// stages took.
//
// The paper's elite-phishing verdicts hinge on which evidence fired —
// squatting type, confusable skeleton, classifier vote margin — and an
// analyst auditing a flagged domain needs that trail after the fact
// (PhishReplicant and PhishSnap both ship analyst-facing explanations for
// exactly this reason). The package provides three surfaces over one
// schema:
//
//   - Record: the per-domain evidence tree (matcher rule, cache
//     provenance, per-profile crawl/ML/verdict evidence, attributed
//     retry/fault events), assembled by internal/core and persisted as a
//     gzip+JSONL store (see store.go).
//   - Logger: a leveled, component-scoped structured JSONL event log.
//     Event names follow the metric-identifier grammar (constant
//     lowercase.dotted literals, enforced by squatvet's eventname
//     analyzer); timestamps come from the sanctioned obs.Stopwatch seam.
//   - Collector: concurrency-safe accumulation — head-sampled scan marks
//     from the matcher hot loop (sampled by domain hash, so the sample
//     set is identical at any worker count), always-on records for
//     flagged verdicts, and a bounded per-domain buffer of attributable
//     events.
//
// Provenance is observational, never load-bearing: nothing in this
// package feeds back into a verdict, a sort key, or a cache fingerprint,
// and records deliberately carry no wall-clock values so the same run
// produces byte-identical records at any parallelism.
//
// Like the rest of obs, everything is stdlib-only and nil-tolerant:
// methods on a nil *Logger or nil *Collector are no-ops, so instrumented
// code needs no "tracing enabled?" branches.
package trace

import (
	"encoding/json"
	"io"
	"sync"

	"squatphi/internal/obs"
)

// Level is an event severity.
type Level int8

// Severity levels, in ascending order.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

var levelNames = [...]string{"debug", "info", "warn", "error"}

func (l Level) String() string {
	if l < 0 || int(l) >= len(levelNames) {
		return "invalid"
	}
	return levelNames[l]
}

// Attr is one key=value event annotation.
type Attr struct {
	Key   string
	Value any
}

// String builds a string attribute.
func String(key, value string) Attr { return Attr{Key: key, Value: value} }

// Int builds an integer attribute.
func Int(key string, value int) Attr { return Attr{Key: key, Value: value} }

// Int64 builds a 64-bit integer attribute.
func Int64(key string, value int64) Attr { return Attr{Key: key, Value: value} }

// Float builds a float attribute.
func Float(key string, value float64) Attr { return Attr{Key: key, Value: value} }

// Bool builds a boolean attribute.
func Bool(key string, value bool) Attr { return Attr{Key: key, Value: value} }

// Event is one structured log line. Attrs marshal with sorted keys
// (encoding/json map behaviour), so a line's byte form is deterministic
// for fixed contents. Events attributed into provenance Records have TMS
// zeroed — records must stay comparable across runs, and wall time is
// the one field that never is.
type Event struct {
	// TMS is the emission time in milliseconds since the Logger started.
	TMS float64 `json:"t_ms"`
	// Level is the severity name ("debug", "info", "warn", "error").
	Level string `json:"level"`
	// Component scopes the emitter ("core", "crawler", ...).
	Component string `json:"component,omitempty"`
	// Name is the event identifier: a constant lowercase.dotted literal
	// (squatvet's eventname analyzer enforces the grammar).
	Name string `json:"event"`
	// Attrs carries the event's annotations.
	Attrs map[string]any `json:"attrs,omitempty"`
}

// loggerCore is the shared state behind every component-scoped Logger
// view: one sink, one clock, one minimum level.
type loggerCore struct {
	mu      sync.Mutex
	w       io.Writer
	min     Level
	sw      obs.Stopwatch
	clock   func() float64 // millis since start; test seam, defaults to sw.Millis
	trace   *Collector
	emitted int64
}

// Logger writes leveled structured events as JSON lines. Component
// returns scoped views sharing the same sink and clock; all views are
// safe for concurrent use. The zero or nil Logger discards everything.
type Logger struct {
	core      *loggerCore
	component string
}

// NewLogger builds a logger writing events at or above min to w. The
// event clock starts now (an obs.Stopwatch — the sanctioned wall-time
// seam), so TMS values are relative to logger construction.
func NewLogger(w io.Writer, min Level) *Logger {
	core := &loggerCore{w: w, min: min, sw: obs.StartStopwatch()}
	core.clock = core.sw.Millis
	return &Logger{core: core}
}

// SetClock replaces the event clock (tests pin TMS values with it). The
// function must be safe for concurrent calls.
func (l *Logger) SetClock(clock func() float64) {
	if l == nil || l.core == nil || clock == nil {
		return
	}
	l.core.mu.Lock()
	defer l.core.mu.Unlock()
	l.core.clock = clock
}

// AttachCollector routes events carrying a "domain" attribute into c's
// per-domain event buffer, so retry/fault events become attributable to
// the domain's provenance record.
func (l *Logger) AttachCollector(c *Collector) {
	if l == nil || l.core == nil {
		return
	}
	l.core.mu.Lock()
	defer l.core.mu.Unlock()
	l.core.trace = c
}

// Component returns a view of the logger that stamps every event with
// the given component name. Views share the sink, clock and level.
func (l *Logger) Component(name string) *Logger {
	if l == nil || l.core == nil {
		return nil
	}
	return &Logger{core: l.core, component: name}
}

// Emitted returns the number of events written so far.
func (l *Logger) Emitted() int64 {
	if l == nil || l.core == nil {
		return 0
	}
	l.core.mu.Lock()
	defer l.core.mu.Unlock()
	return l.core.emitted
}

// Event writes one structured event. name must be a constant
// lowercase.dotted literal (enforced by squatvet's eventname analyzer).
// Events below the logger's minimum level are dropped.
func (l *Logger) Event(level Level, name string, attrs ...Attr) {
	if l == nil || l.core == nil || level < l.core.min {
		return
	}
	ev := Event{Level: level.String(), Component: l.component, Name: name}
	if len(attrs) > 0 {
		ev.Attrs = make(map[string]any, len(attrs))
		for _, a := range attrs {
			ev.Attrs[a.Key] = a.Value
		}
	}
	core := l.core
	core.mu.Lock()
	ev.TMS = core.clock()
	var line []byte
	if core.w != nil {
		if b, err := json.Marshal(ev); err == nil {
			line = append(b, '\n')
		}
	}
	if line != nil {
		_, _ = core.w.Write(line)
		core.emitted++
	}
	col := core.trace
	core.mu.Unlock()

	if col != nil && ev.Attrs != nil {
		if dom, ok := ev.Attrs["domain"].(string); ok && dom != "" {
			ev.TMS = 0 // records must stay comparable across runs
			col.AddEvent(dom, ev)
		}
	}
}

// Debug emits a debug-level event.
func (l *Logger) Debug(name string, attrs ...Attr) { l.Event(LevelDebug, name, attrs...) }

// Info emits an info-level event.
func (l *Logger) Info(name string, attrs ...Attr) { l.Event(LevelInfo, name, attrs...) }

// Warn emits a warn-level event.
func (l *Logger) Warn(name string, attrs ...Attr) { l.Event(LevelWarn, name, attrs...) }

// Error emits an error-level event.
func (l *Logger) Error(name string, attrs ...Attr) { l.Event(LevelError, name, attrs...) }
