package trace

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// SchemaVersion versions the Record wire format (see DESIGN.md §9). Bump
// it on any field change so stored trace files remain interpretable.
//
// v2: MatcherEvidence gained the brand-language-model fields (lm_score,
// lm_model) backing the "generated" squatting type.
const SchemaVersion = 2

// Record is the full evidence trail behind one domain's verdict. Every
// field is deterministic for a given world and configuration — records
// contain no wall-clock values and no worker-dependent state, so the
// same run produces byte-identical records at any parallelism. Attached
// Events have their timestamps zeroed for the same reason.
type Record struct {
	// Schema is the record format version (SchemaVersion).
	Schema int `json:"schema"`
	// Domain is the subject, in lowercase ASCII (ACE) form.
	Domain string `json:"domain"`
	// Matcher explains the squatting classification.
	Matcher *MatcherEvidence `json:"matcher,omitempty"`
	// Cache explains where the scan verdict came from (fresh vs cached).
	Cache *CacheEvidence `json:"cache,omitempty"`
	// Profiles holds per-crawl-profile evidence (web, then mobile).
	Profiles []ProfileEvidence `json:"profiles,omitempty"`
	// Events are log events attributed to this domain (timestamps zeroed).
	Events []Event `json:"events,omitempty"`
}

// MatcherEvidence explains a squat.Matcher classification: which rule
// fired, against which brand, and the derived forms the rule compared.
type MatcherEvidence struct {
	// Rule names the classification path, e.g. "homograph.skeleton" or
	// "none".
	Rule string `json:"rule"`
	// Type is the squatting type name ("homograph", ..., "none").
	Type string `json:"type"`
	// Brand is the matched brand's full domain ("" when unmatched).
	Brand string `json:"brand,omitempty"`
	// Label and TLD are the observed domain's registrable split.
	Label string `json:"label"`
	TLD   string `json:"tld,omitempty"`
	// Unicode is the IDN-decoded label when the observed label is ACE.
	Unicode string `json:"unicode,omitempty"`
	// Skeleton is the confusable skeleton of the (decoded) label.
	Skeleton string `json:"skeleton"`
	// BrandSkeleton is the matched brand name's skeleton.
	BrandSkeleton string `json:"brand_skeleton,omitempty"`
	// EditDistance is the Levenshtein distance between the (decoded)
	// label and the matched brand name; -1 when unmatched.
	EditDistance int `json:"edit_distance"`
	// LMScore and LMModel carry the brand-language-model evidence when a
	// model was attached to the matcher: the label's brand-likeness score
	// and the scoring model's fingerprint (fixed-width hex). Absent
	// entirely for model-less configurations, keeping v1-era records
	// byte-stable.
	LMScore float64 `json:"lm_score,omitempty"`
	LMModel string  `json:"lm_model,omitempty"`
}

// CacheEvidence explains a verdict's scan provenance under incremental
// scanning: whether the matcher actually ran for this domain in the
// latest scan, and at which epoch the cached verdict was computed.
type CacheEvidence struct {
	// Source is "fresh" (matcher ran in the verdict's epoch) or "cache"
	// (verdict reused from an earlier epoch via the deltascan verdict
	// cache or an unchanged shard).
	Source string `json:"source"`
	// Epoch is the scan epoch that computed the verdict (1-based; 0 means
	// the verdict predates epoch tracking, i.e. a legacy spill file).
	Epoch int `json:"epoch"`
	// Fingerprint is the matcher configuration fingerprint the verdict is
	// valid under, in fixed-width hex.
	Fingerprint string `json:"fingerprint"`
}

// ProfileEvidence is the per-crawl-profile part of the trail: what the
// crawler saw and how the classifier voted for that rendering profile.
type ProfileEvidence struct {
	// Profile is "web" or "mobile".
	Profile string `json:"profile"`
	// Crawl describes the capture; nil when the domain was never crawled.
	Crawl *CrawlEvidence `json:"crawl,omitempty"`
	// ML describes the classifier's decision; nil when no score was
	// computed (dead page or redirect off-host).
	ML *MLEvidence `json:"ml,omitempty"`
	// Verdict is the final flag decision for this profile.
	Verdict *VerdictEvidence `json:"verdict,omitempty"`
}

// CrawlEvidence summarises one capture plus the retry/fault history
// attributed to the domain's host across the run.
type CrawlEvidence struct {
	Live       bool   `json:"live"`
	StatusCode int    `json:"status_code,omitempty"`
	Redirects  int    `json:"redirects"`
	FinalHost  string `json:"final_host,omitempty"`
	// Retries and Failures are the crawler's per-host retry and failure
	// counts for this domain's host (whole run, both profiles).
	Retries  int64 `json:"retries"`
	Failures int64 `json:"failures"`
}

// MLEvidence explains the classifier score: the ensemble probability,
// the per-tree vote split, and the sparse feature vector that went in.
type MLEvidence struct {
	// Score is the ensemble probability of "phishing".
	Score float64 `json:"score"`
	// Trees, VotesFor and Margin describe the forest vote: how many trees
	// voted phishing (leaf probability >= 0.5) and the normalised margin
	// (VotesFor*2 - Trees)/Trees in [-1, 1]. All zero for non-forest
	// models.
	Trees    int     `json:"trees,omitempty"`
	VotesFor int     `json:"votes_for,omitempty"`
	Margin   float64 `json:"margin,omitempty"`
	// Dim is the feature vector dimensionality; NonZero its sparse form.
	Dim     int            `json:"dim"`
	NonZero []FeatureValue `json:"nonzero,omitempty"`
}

// FeatureValue is one non-zero feature vector entry.
type FeatureValue struct {
	Index int     `json:"i"`
	Value float64 `json:"v"`
}

// VerdictEvidence is the final per-profile decision.
type VerdictEvidence struct {
	Flagged bool `json:"flagged"`
	// Score repeats the deciding classifier score (0 when never scored).
	Score float64 `json:"score"`
	// Confirmed reports the blacklist cross-check for flagged domains.
	Confirmed bool `json:"confirmed,omitempty"`
}

// ftoa renders floats with the shortest exact representation — the same
// form encoding/json uses — so rendered text and JSON never disagree.
func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Render formats the record as a deterministic human-readable evidence
// trail, one property group per line.
func (r *Record) Render() string {
	if r == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "domain: %s\n", r.Domain)
	if m := r.Matcher; m != nil {
		fmt.Fprintf(&b, "matcher: rule=%s type=%s", m.Rule, m.Type)
		if m.Brand != "" {
			fmt.Fprintf(&b, " brand=%s", m.Brand)
		}
		fmt.Fprintf(&b, " label=%s", m.Label)
		if m.TLD != "" {
			fmt.Fprintf(&b, " tld=%s", m.TLD)
		}
		if m.Unicode != "" {
			fmt.Fprintf(&b, " unicode=%s", m.Unicode)
		}
		fmt.Fprintf(&b, " skeleton=%s", m.Skeleton)
		if m.BrandSkeleton != "" {
			fmt.Fprintf(&b, " brand_skeleton=%s", m.BrandSkeleton)
		}
		fmt.Fprintf(&b, " edit_distance=%d", m.EditDistance)
		if m.LMModel != "" {
			fmt.Fprintf(&b, " lm_score=%s lm_model=%s", ftoa(m.LMScore), m.LMModel)
		}
		b.WriteByte('\n')
	}
	if c := r.Cache; c != nil {
		fmt.Fprintf(&b, "cache: source=%s epoch=%d fingerprint=%s\n", c.Source, c.Epoch, c.Fingerprint)
	}
	for _, p := range r.Profiles {
		fmt.Fprintf(&b, "profile %s:\n", p.Profile)
		if cr := p.Crawl; cr != nil {
			fmt.Fprintf(&b, "  crawl: live=%t status=%d redirects=%d", cr.Live, cr.StatusCode, cr.Redirects)
			if cr.FinalHost != "" {
				fmt.Fprintf(&b, " final_host=%s", cr.FinalHost)
			}
			fmt.Fprintf(&b, " retries=%d failures=%d\n", cr.Retries, cr.Failures)
		}
		if ml := p.ML; ml != nil {
			fmt.Fprintf(&b, "  ml: score=%s", ftoa(ml.Score))
			if ml.Trees > 0 {
				fmt.Fprintf(&b, " trees=%d votes_for=%d margin=%s", ml.Trees, ml.VotesFor, ftoa(ml.Margin))
			}
			fmt.Fprintf(&b, " dim=%d nonzero=%d\n", ml.Dim, len(ml.NonZero))
		}
		if v := p.Verdict; v != nil {
			state := "clean"
			if v.Flagged {
				state = "FLAGGED"
			}
			fmt.Fprintf(&b, "  verdict: %s score=%s", state, ftoa(v.Score))
			if v.Flagged {
				fmt.Fprintf(&b, " confirmed=%t", v.Confirmed)
			}
			b.WriteByte('\n')
		}
	}
	if len(r.Events) > 0 {
		fmt.Fprintf(&b, "events: %d\n", len(r.Events))
		for _, ev := range r.Events {
			fmt.Fprintf(&b, "  [%s] %s %s", ev.Level, ev.Component, ev.Name)
			writeAttrs(&b, ev.Attrs)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// writeAttrs renders event attrs sorted by key, matching the JSON form.
func writeAttrs(b *strings.Builder, attrs map[string]any) {
	if len(attrs) == 0 {
		return
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(b, " %s=%v", k, attrs[k])
	}
}
