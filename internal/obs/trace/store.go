package trace

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"squatphi/internal/fsx"
)

// The trace store is gzip-compressed JSONL keyed by domain: a header
// line, then the head-sampled scan marks, then the full evidence
// records, both sorted by domain. The layout mirrors the deltascan spill
// format so the same tooling conventions (streamed lines, versioned
// header, corrupt-line = hard error) apply.

// storeVersion versions the container layout; SchemaVersion (inside each
// record) versions the evidence schema.
const storeVersion = 1

// storeHeader is the first line of a trace store.
type storeHeader struct {
	Kind        string `json:"kind"` // "trace_store"
	Version     int    `json:"version"`
	Schema      int    `json:"schema"`
	SampleEvery int    `json:"sample_every,omitempty"`
	Marks       int    `json:"marks"`
	Records     int    `json:"records"`
}

// storeLine is one body line: exactly one of Mark or Record is set.
type storeLine struct {
	Mark   *ScanMark `json:"mark,omitempty"`
	Record *Record   `json:"record,omitempty"`
}

// Store is the decoded content of a trace store file.
type Store struct {
	// SampleEvery is the head-sampling period the run used (0 = disabled).
	SampleEvery int
	// Marks are the head-sampled scan marks, sorted by domain.
	Marks []ScanMark
	// Records are the full evidence records, sorted by domain.
	Records []*Record
}

// Lookup returns the record for a domain, if stored.
func (s *Store) Lookup(domain string) (*Record, bool) {
	if s == nil {
		return nil, false
	}
	for _, rec := range s.Records {
		if rec.Domain == domain {
			return rec, true
		}
	}
	return nil, false
}

// WriteStore persists the collector's provenance to w as gzip+JSONL.
func (c *Collector) WriteStore(w io.Writer) error {
	zw := gzip.NewWriter(w)
	bw := bufio.NewWriter(zw)
	enc := json.NewEncoder(bw)

	marks := c.ScanMarks()
	records := c.Records()
	sampleEvery := 0
	if c != nil {
		sampleEvery = int(c.sampleEvery)
	}
	if err := enc.Encode(storeHeader{
		Kind:        "trace_store",
		Version:     storeVersion,
		Schema:      SchemaVersion,
		SampleEvery: sampleEvery,
		Marks:       len(marks),
		Records:     len(records),
	}); err != nil {
		return err
	}
	for i := range marks {
		if err := enc.Encode(storeLine{Mark: &marks[i]}); err != nil {
			return err
		}
	}
	for _, rec := range records {
		if err := enc.Encode(storeLine{Record: rec}); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	return zw.Close()
}

// WriteStoreFile writes the trace store to path atomically (temp file +
// fsync + rename, internal/fsx): ReadStore treats truncation as a hard
// error, so a crash mid-write must leave the previous store intact rather
// than a torn gzip a later squatexplain run would refuse to open.
func (c *Collector) WriteStoreFile(path string) error {
	return fsx.WriteFile(path, c.WriteStore)
}

// ReadStore decodes a trace store written by WriteStore. Unknown
// versions and malformed lines are hard errors — a provenance trail that
// silently drops evidence is worse than none.
func ReadStore(r io.Reader) (*Store, error) {
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("trace store: %w", err)
	}
	defer zr.Close()
	dec := json.NewDecoder(bufio.NewReader(zr))

	var hdr storeHeader
	if err := dec.Decode(&hdr); err != nil {
		return nil, fmt.Errorf("trace store header: %w", err)
	}
	if hdr.Kind != "trace_store" || hdr.Version != storeVersion {
		return nil, fmt.Errorf("trace store: unsupported kind %q version %d", hdr.Kind, hdr.Version)
	}
	st := &Store{
		SampleEvery: hdr.SampleEvery,
		Marks:       make([]ScanMark, 0, hdr.Marks),
		Records:     make([]*Record, 0, hdr.Records),
	}
	for {
		var line storeLine
		if err := dec.Decode(&line); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("trace store line: %w", err)
		}
		switch {
		case line.Mark != nil:
			st.Marks = append(st.Marks, *line.Mark)
		case line.Record != nil:
			st.Records = append(st.Records, line.Record)
		default:
			return nil, fmt.Errorf("trace store: line is neither mark nor record")
		}
	}
	if len(st.Marks) != hdr.Marks || len(st.Records) != hdr.Records {
		return nil, fmt.Errorf("trace store: truncated (%d/%d marks, %d/%d records)",
			len(st.Marks), hdr.Marks, len(st.Records), hdr.Records)
	}
	return st, nil
}

// ReadStoreFile reads a trace store from path.
func ReadStoreFile(path string) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadStore(f)
}
