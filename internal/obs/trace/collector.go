package trace

import (
	"sort"
	"sync"
	"sync/atomic"
)

// DefaultSampleEvery is the default head-sampling period: one scanned
// domain in every 64 gets a provenance mark. Mirrors the matcher's
// scan-time sampling period — frequent enough to watch the sampler work,
// rare enough that the hash check stays invisible next to a ~µs
// classification.
const DefaultSampleEvery = 64

// Bounds on retained state: provenance must never become the thing that
// OOMs a 224M-record scan.
const (
	maxScanMarks       = 8192 // head-sampled scan marks kept with full detail
	maxEventsPerDomain = 16   // attributed events retained per domain
	maxEventDomains    = 4096 // domains with attributed-event buffers
)

// ScanMark is the minimal provenance of one head-sampled matcher
// classification: enough to audit that the sampler and matcher agree,
// cheap enough for the hot loop.
type ScanMark struct {
	Domain  string `json:"domain"`
	Matched bool   `json:"matched"`
}

// Collector accumulates provenance across a run: head-sampled scan marks
// from the matcher hot loop, always-on evidence records for flagged
// verdicts, and per-domain buffers of attributable events. All methods
// are safe for concurrent use and no-ops on a nil receiver.
//
// Sampling selects domains by FNV-1a hash, not by call counter, so the
// sampled set depends only on the domain names scanned — identical at
// any worker count or shard interleaving.
type Collector struct {
	sampleEvery uint64 // 0 = sampling disabled
	// sampleMask is sampleEvery-1 when sampleEvery is a power of two, so
	// the per-scan sampling decision is a mask instead of a 64-bit DIV.
	sampleMask uint64

	scansSampled atomic.Int64
	hitsSampled  atomic.Int64

	mu      sync.Mutex
	marks   map[string]bool // sampled domain -> matched
	records map[string]*Record
	events  map[string][]Event
}

// NewCollector builds a collector head-sampling one scanned domain in
// every sampleEvery. 0 selects DefaultSampleEvery; a negative value
// disables scan sampling (flagged-verdict records and event attribution
// still work).
func NewCollector(sampleEvery int) *Collector {
	switch {
	case sampleEvery == 0:
		sampleEvery = DefaultSampleEvery
	case sampleEvery < 0:
		sampleEvery = 0
	}
	c := &Collector{
		sampleEvery: uint64(sampleEvery),
		marks:       map[string]bool{},
		records:     map[string]*Record{},
		events:      map[string][]Event{},
	}
	if n := c.sampleEvery; n != 0 && n&(n-1) == 0 {
		c.sampleMask = n - 1
	}
	return c
}

// SampleEvery returns the effective head-sampling rate (0 = disabled).
func (c *Collector) SampleEvery() int {
	if c == nil {
		return 0
	}
	return int(c.sampleEvery)
}

// fnv1a hashes s with 64-bit FNV-1a.
//
//squat:hot
func fnv1a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Sampled reports whether domain falls in the 1-in-N head sample.
func (c *Collector) Sampled(domain string) bool {
	if c == nil || c.sampleEvery == 0 {
		return false
	}
	if c.sampleMask != 0 {
		return fnv1a(domain)&c.sampleMask == 0
	}
	return fnv1a(domain)%c.sampleEvery == 0
}

// ObserveScan records one matcher classification if the domain is in the
// head sample. The fast path for unsampled domains is one hash and one
// mask (power-of-two rates, including the default) or one modulo — no
// locks, no allocation. This sits inside Matcher.Match on the DNS-scan
// hot path, so the unsampled cost is what the <5% overhead budget buys.
//
//squat:hot
func (c *Collector) ObserveScan(domain string, matched bool) {
	if c == nil || c.sampleEvery == 0 {
		return
	}
	h := fnv1a(domain)
	if c.sampleMask != 0 {
		if h&c.sampleMask != 0 {
			return
		}
	} else if h%c.sampleEvery != 0 {
		return
	}
	c.recordMark(domain, matched)
}

// fnv1aBytes is fnv1a over a byte view — same hash, so ObserveScanBytes
// samples exactly the domains ObserveScan would.
//
//squat:hot
func fnv1aBytes(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(b); i++ {
		h ^= uint64(b[i])
		h *= 1099511628211
	}
	return h
}

// ObserveScanBytes is ObserveScan for a domain held as raw bytes (the
// mmap-backed snapshot scan path). The domain is converted to a string
// only when it falls in the head sample, keeping the unsampled hot path
// allocation-free.
//
//squat:hot
func (c *Collector) ObserveScanBytes(domain []byte, matched bool) {
	if c == nil || c.sampleEvery == 0 {
		return
	}
	h := fnv1aBytes(domain)
	if c.sampleMask != 0 {
		if h&c.sampleMask != 0 {
			return
		}
	} else if h%c.sampleEvery != 0 {
		return
	}
	c.recordMarkBytes(domain, matched)
}

// recordMarkBytes is ObserveScanBytes' sampled slow path; the string
// conversion happens here, behind the cold boundary, so the unsampled
// hot path stays allocation-free by construction.
//
//squat:cold
func (c *Collector) recordMarkBytes(domain []byte, matched bool) {
	c.recordMark(string(domain), matched)
}

// recordMark is ObserveScan's sampled slow path: atomics plus a short
// critical section, 1-in-N events by construction.
//
//squat:cold
func (c *Collector) recordMark(domain string, matched bool) {
	c.scansSampled.Add(1)
	if matched {
		c.hitsSampled.Add(1)
	}
	c.mu.Lock()
	if len(c.marks) < maxScanMarks {
		c.marks[domain] = matched
	}
	c.mu.Unlock()
}

// ScanStats returns the number of head-sampled classifications and how
// many of them matched.
func (c *Collector) ScanStats() (sampled, matched int64) {
	if c == nil {
		return 0, 0
	}
	return c.scansSampled.Load(), c.hitsSampled.Load()
}

// ScanMarks returns the retained head-sampled scan marks, sorted by
// domain.
func (c *Collector) ScanMarks() []ScanMark {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	out := make([]ScanMark, 0, len(c.marks))
	for d, m := range c.marks {
		out = append(out, ScanMark{Domain: d, Matched: m})
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Domain < out[j].Domain })
	return out
}

// Put stores (or replaces) the evidence record for a domain. Flagged
// verdicts are always recorded regardless of sampling.
func (c *Collector) Put(rec *Record) {
	if c == nil || rec == nil || rec.Domain == "" {
		return
	}
	c.mu.Lock()
	c.records[rec.Domain] = rec
	c.mu.Unlock()
}

// Get returns the stored evidence record for a domain.
func (c *Collector) Get(domain string) (*Record, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	rec, ok := c.records[domain]
	c.mu.Unlock()
	return rec, ok
}

// Records returns every stored evidence record, sorted by domain.
func (c *Collector) Records() []*Record {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	out := make([]*Record, 0, len(c.records))
	for _, rec := range c.records {
		out = append(out, rec)
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Domain < out[j].Domain })
	return out
}

// AddEvent buffers an event attributed to a domain (typically routed
// here by Logger.AttachCollector). Buffers are bounded: at most
// maxEventsPerDomain events for each of at most maxEventDomains domains;
// excess events are dropped.
func (c *Collector) AddEvent(domain string, ev Event) {
	if c == nil || domain == "" {
		return
	}
	c.mu.Lock()
	buf, ok := c.events[domain]
	if !ok && len(c.events) >= maxEventDomains {
		c.mu.Unlock()
		return
	}
	if len(buf) < maxEventsPerDomain {
		c.events[domain] = append(buf, ev)
	}
	c.mu.Unlock()
}

// EventsFor returns the buffered events attributed to a domain, in
// arrival order.
func (c *Collector) EventsFor(domain string) []Event {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	buf := c.events[domain]
	out := make([]Event, len(buf))
	copy(out, buf)
	c.mu.Unlock()
	return out
}
