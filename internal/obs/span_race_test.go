package obs

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

// TestSpanImmutableAfterEnd pins the audit outcome: SetAttr and Fail on
// an ended span are dropped, so a snapshot taken at End time and one
// taken later can never disagree.
func TestSpanImmutableAfterEnd(t *testing.T) {
	_, s := StartSpan(context.Background(), "stage")
	s.SetAttr("before", "kept")
	s.End()
	s.SetAttr("after", "dropped")
	s.Fail(fmt.Errorf("late failure"))

	snap := s.Snapshot()
	if snap.Attrs["before"] != "kept" {
		t.Error("attr set before End was lost")
	}
	if _, ok := snap.Attrs["after"]; ok {
		t.Error("attr set after End was recorded")
	}
	if snap.Err != "" {
		t.Errorf("Fail after End was recorded: %q", snap.Err)
	}
}

// TestSpanConcurrentChildRecording is the -race regression test for the
// worker-goroutine span pattern used by the pipeline: many goroutines
// attach child spans, annotate and end them while the root is being
// snapshotted concurrently and ends mid-flight.
func TestSpanConcurrentChildRecording(t *testing.T) {
	rec := NewRecorder(4)
	ctx := WithRecorder(context.Background(), rec)
	rctx, root := StartSpan(ctx, "scan")

	const workers = 16
	const spansPerWorker = 25
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; i < spansPerWorker; i++ {
				_, child := StartSpan(rctx, fmt.Sprintf("shard.%d.%d", w, i))
				child.SetAttr("worker", fmt.Sprint(w))
				if i%5 == 0 {
					child.Fail(fmt.Errorf("shard %d fault", i))
				}
				child.EndWith(nil)
			}
		}(w)
	}
	// Snapshot readers race with the writers, and the root ends while
	// children are still being attached.
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		<-start
		for i := 0; i < 100; i++ {
			_ = root.Snapshot()
			_ = rec.Traces()
		}
	}()
	close(start)
	root.End()
	wg.Wait()
	<-readerDone

	snap := root.Snapshot()
	if got := len(snap.Children); got != workers*spansPerWorker {
		t.Fatalf("root has %d children, want %d", got, workers*spansPerWorker)
	}
	if rec.Total() != 1 {
		t.Fatalf("recorder holds %d roots, want 1", rec.Total())
	}
}
