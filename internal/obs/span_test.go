package obs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestSpanNestingAndOrdering(t *testing.T) {
	rec := NewRecorder(8)
	ctx := WithRecorder(context.Background(), rec)

	ctx, root := StartSpan(ctx, "round")
	for _, name := range []string{"probe", "match", "crawl"} {
		childCtx, child := StartSpan(ctx, name)
		_, grand := StartSpan(childCtx, name+".inner")
		grand.End()
		child.End()
	}
	root.SetAttr("candidates", "7")
	root.EndWith(nil)

	traces := rec.Traces()
	if len(traces) != 1 {
		t.Fatalf("recorded %d traces, want 1", len(traces))
	}
	tr := traces[0]
	if tr.Name != "round" || tr.InProgress {
		t.Errorf("root = %q in_progress=%v, want round/false", tr.Name, tr.InProgress)
	}
	if tr.Attrs["candidates"] != "7" {
		t.Errorf("attrs = %v", tr.Attrs)
	}
	if len(tr.Children) != 3 {
		t.Fatalf("root has %d children, want 3", len(tr.Children))
	}
	for i, want := range []string{"probe", "match", "crawl"} {
		c := tr.Children[i]
		if c.Name != want {
			t.Errorf("child[%d] = %q, want %q (ordering)", i, c.Name, want)
		}
		if len(c.Children) != 1 || c.Children[0].Name != want+".inner" {
			t.Errorf("child[%d] grandchildren = %+v", i, c.Children)
		}
	}
}

func TestSpanError(t *testing.T) {
	rec := NewRecorder(2)
	ctx := WithRecorder(context.Background(), rec)
	_, sp := StartSpan(ctx, "crawl")
	sp.EndWith(errors.New("boom"))
	sp.EndWith(errors.New("second end ignored"))
	traces := rec.Traces()
	if len(traces) != 1 {
		t.Fatalf("recorded %d traces, want 1 (End must be idempotent)", len(traces))
	}
	if traces[0].Err != "boom" {
		t.Errorf("err = %q, want boom", traces[0].Err)
	}
}

func TestRecorderRingWraps(t *testing.T) {
	rec := NewRecorder(4)
	ctx := WithRecorder(context.Background(), rec)
	for i := 0; i < 7; i++ {
		_, sp := StartSpan(ctx, fmt.Sprintf("run-%d", i))
		sp.End()
	}
	if rec.Total() != 7 {
		t.Errorf("total = %d, want 7", rec.Total())
	}
	traces := rec.Traces()
	if len(traces) != 4 {
		t.Fatalf("retained %d traces, want 4", len(traces))
	}
	// Newest first: run-6, run-5, run-4, run-3.
	for i, want := range []string{"run-6", "run-5", "run-4", "run-3"} {
		if traces[i].Name != want {
			t.Errorf("traces[%d] = %q, want %q", i, traces[i].Name, want)
		}
	}
}

func TestDetachedSpanSafe(t *testing.T) {
	// No recorder, no parent: spans still work and record nothing.
	ctx, sp := StartSpan(context.Background(), "detached")
	_, child := StartSpan(ctx, "child")
	child.End()
	sp.End()
	if sp.Duration() <= 0 {
		t.Error("detached span has no duration")
	}
	var nilSpan *Span
	nilSpan.SetAttr("k", "v")
	nilSpan.Fail(errors.New("x"))
	nilSpan.End()
}

func TestConcurrentChildren(t *testing.T) {
	rec := NewRecorder(2)
	ctx := WithRecorder(context.Background(), rec)
	ctx, root := StartSpan(ctx, "parallel")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, sp := StartSpan(ctx, fmt.Sprintf("worker-%d", i))
			sp.SetAttr("i", fmt.Sprint(i))
			sp.End()
			_ = root.Snapshot() // snapshot while siblings mutate
		}(i)
	}
	wg.Wait()
	root.End()
	if got := len(rec.Traces()[0].Children); got != 16 {
		t.Errorf("children = %d, want 16", got)
	}
}
