package obs

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// Route attaches an extra handler to the debug mux — e.g. the verdict
// provenance endpoint from internal/obs/trace, which obs cannot import
// without a cycle.
type Route struct {
	Pattern string
	Handler http.Handler
}

// NewMux builds the debug handler tree:
//
//	/          index of routes
//	/metrics   JSON snapshot of the registry
//	/spans     recent pipeline traces (?n=K limits, newest first)
//	/debug/pprof/...  the standard Go profiler endpoints
//	/debug/vars       expvar (includes registries published via PublishExpvar)
//
// plus any extra routes the caller mounts. Either of reg/rec may be nil;
// the corresponding route serves empty data.
func NewMux(reg *Registry, rec *Recorder, extra ...Route) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, "squatphi debug endpoint\n\n"+
			"/metrics      metrics registry snapshot (JSON)\n"+
			"/spans        recent pipeline traces (JSON, ?n=K)\n"+
			"/debug/pprof  Go profiler\n"+
			"/debug/vars   expvar\n")
		for _, rt := range extra {
			fmt.Fprintf(w, "%s\n", rt.Pattern)
		}
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, reg.Snapshot())
	})
	mux.HandleFunc("/spans", func(w http.ResponseWriter, r *http.Request) {
		var traces []SpanSnapshot
		if rec != nil {
			traces = rec.Traces()
		}
		if nStr := r.URL.Query().Get("n"); nStr != "" {
			if n, err := strconv.Atoi(nStr); err == nil && n >= 0 && n < len(traces) {
				traces = traces[:n]
			}
		}
		if traces == nil {
			traces = []SpanSnapshot{}
		}
		writeJSON(w, traces)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	for _, rt := range extra {
		if rt.Pattern != "" && rt.Handler != nil {
			mux.Handle(rt.Pattern, rt.Handler)
		}
	}
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// Server timeout policy. The debug port used to run a zero-value
// http.Server: no header timeout (one slowloris connection per file
// descriptor holds the port forever) and no idle timeout (dead keep-alive
// conns accumulate). These bounds cover every repo listener — the debug
// endpoint and squatd's serving port reuse the same hardened server.
//
// WriteTimeout stays 0 deliberately: /debug/pprof/profile and /trace
// stream for a caller-chosen number of seconds, and a write deadline
// would sever them mid-profile. Handlers that need response deadlines
// bound themselves (squatd's verdict handlers are microsecond-scale).
const (
	// ReadHeaderTimeout bounds how long a connection may dribble its
	// request header before being dropped (the slowloris window).
	ReadHeaderTimeout = 5 * time.Second
	// ReadTimeout bounds reading one full request, header + body
	// (bulk verdict POSTs are bounded, profile GETs have no body).
	ReadTimeout = 30 * time.Second
	// IdleTimeout reaps keep-alive connections with no next request.
	IdleTimeout = 2 * time.Minute
	// ShutdownGrace is how long Close waits for in-flight requests
	// before severing their connections.
	ShutdownGrace = 5 * time.Second
)

// NewServer returns the repo's hardened http.Server for handler: header,
// read, and idle timeouts set, write timeout left to the handlers. Every
// listener in the repository (obs debug endpoint, squatd) goes through
// here so the timeout policy has one home.
func NewServer(handler http.Handler) *http.Server {
	return &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: ReadHeaderTimeout,
		ReadTimeout:       ReadTimeout,
		IdleTimeout:       IdleTimeout,
	}
}

// DebugServer is a running debug endpoint.
type DebugServer struct {
	srv *http.Server
	ln  net.Listener
}

// Serve starts the debug endpoint on addr (e.g. ":6060" or
// "127.0.0.1:0"). Callers must Close (or Shutdown) it.
func Serve(addr string, reg *Registry, rec *Recorder, extra ...Route) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := NewServer(NewMux(reg, rec, extra...))
	go func() { _ = srv.Serve(ln) }()
	return &DebugServer{srv: srv, ln: ln}, nil
}

// Addr returns the bound address.
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Shutdown stops accepting new connections and waits for in-flight
// requests to finish, bounded by ctx. It is the graceful half of the
// serving lifecycle; a cancelled ctx severs the stragglers.
func (d *DebugServer) Shutdown(ctx context.Context) error { return d.srv.Shutdown(ctx) }

// Close shuts the endpoint down gracefully with the default grace period
// (ShutdownGrace), then severs whatever is still in flight. The old
// behaviour — http.Server.Close, dropping in-flight requests on the floor
// — made every defer dbg.Close() a race against the last /metrics scrape.
func (d *DebugServer) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), ShutdownGrace)
	defer cancel()
	if err := d.srv.Shutdown(ctx); err != nil {
		return d.srv.Close()
	}
	return nil
}
