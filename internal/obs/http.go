package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// Route attaches an extra handler to the debug mux — e.g. the verdict
// provenance endpoint from internal/obs/trace, which obs cannot import
// without a cycle.
type Route struct {
	Pattern string
	Handler http.Handler
}

// NewMux builds the debug handler tree:
//
//	/          index of routes
//	/metrics   JSON snapshot of the registry
//	/spans     recent pipeline traces (?n=K limits, newest first)
//	/debug/pprof/...  the standard Go profiler endpoints
//	/debug/vars       expvar (includes registries published via PublishExpvar)
//
// plus any extra routes the caller mounts. Either of reg/rec may be nil;
// the corresponding route serves empty data.
func NewMux(reg *Registry, rec *Recorder, extra ...Route) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, "squatphi debug endpoint\n\n"+
			"/metrics      metrics registry snapshot (JSON)\n"+
			"/spans        recent pipeline traces (JSON, ?n=K)\n"+
			"/debug/pprof  Go profiler\n"+
			"/debug/vars   expvar\n")
		for _, rt := range extra {
			fmt.Fprintf(w, "%s\n", rt.Pattern)
		}
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, reg.Snapshot())
	})
	mux.HandleFunc("/spans", func(w http.ResponseWriter, r *http.Request) {
		var traces []SpanSnapshot
		if rec != nil {
			traces = rec.Traces()
		}
		if nStr := r.URL.Query().Get("n"); nStr != "" {
			if n, err := strconv.Atoi(nStr); err == nil && n >= 0 && n < len(traces) {
				traces = traces[:n]
			}
		}
		if traces == nil {
			traces = []SpanSnapshot{}
		}
		writeJSON(w, traces)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	for _, rt := range extra {
		if rt.Pattern != "" && rt.Handler != nil {
			mux.Handle(rt.Pattern, rt.Handler)
		}
	}
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// DebugServer is a running debug endpoint.
type DebugServer struct {
	srv *http.Server
	ln  net.Listener
}

// Serve starts the debug endpoint on addr (e.g. ":6060" or
// "127.0.0.1:0"). Callers must Close it.
func Serve(addr string, reg *Registry, rec *Recorder, extra ...Route) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: NewMux(reg, rec, extra...)}
	go func() { _ = srv.Serve(ln) }()
	return &DebugServer{srv: srv, ln: ln}, nil
}

// Addr returns the bound address.
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close shuts the endpoint down.
func (d *DebugServer) Close() error { return d.srv.Close() }
