package obs

import (
	"testing"
	"time"
)

func TestStopwatchElapsed(t *testing.T) {
	sw := StartStopwatch()
	time.Sleep(2 * time.Millisecond)
	d := sw.Elapsed()
	if d <= 0 {
		t.Fatalf("Elapsed() = %v, want > 0", d)
	}
	if d > 5*time.Second {
		t.Fatalf("Elapsed() = %v, implausibly large", d)
	}
	if sw.Elapsed() < d {
		t.Fatal("Elapsed() went backwards across calls")
	}
}

func TestStopwatchUnits(t *testing.T) {
	sw := StartStopwatch()
	time.Sleep(2 * time.Millisecond)
	secs, ms, us := sw.Seconds(), sw.Millis(), sw.Micros()
	if us <= 0 || ms < 0 || secs < 0 {
		t.Fatalf("unit conversions: secs=%v ms=%v us=%v", secs, ms, us)
	}
	// Micros must dominate millis which must dominate seconds in magnitude.
	if float64(us) < ms || ms < secs*1000-1 {
		t.Fatalf("unit ordering violated: secs=%v ms=%v us=%v", secs, ms, us)
	}
}

func TestStopwatchZeroValue(t *testing.T) {
	var sw Stopwatch
	// A zero stopwatch reports a huge elapsed time (since the epoch); the
	// caller is expected to Start it. Just assert it does not panic and is
	// monotonic-ish.
	if sw.Elapsed() <= 0 {
		t.Fatal("zero-value Stopwatch Elapsed() should be positive (epoch-relative)")
	}
}
