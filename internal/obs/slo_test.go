package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestSnapshotExportsQuantiles pins the quantile math surfaced in the
// /metrics JSON: 100 observations 1..100 against decade buckets must put
// p50/p95/p99 at the interpolated 50/95/99 marks.
func TestSnapshotExportsQuantiles(t *testing.T) {
	h := newHistogram([]float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100})
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	s := h.Snapshot()
	if s.P50 != s.Quantile(0.50) || s.P95 != s.Quantile(0.95) || s.P99 != s.Quantile(0.99) {
		t.Fatalf("exported quantiles disagree with Quantile(): p50=%v p95=%v p99=%v", s.P50, s.P95, s.P99)
	}
	// Each bucket holds 10 uniform observations, so interpolation lands
	// exactly on the rank: p50=50, p95=95, p99=99.
	if s.P50 != 50 || s.P95 != 95 || s.P99 != 99 {
		t.Errorf("quantiles = (%v, %v, %v), want (50, 95, 99)", s.P50, s.P95, s.P99)
	}

	// The fields must actually reach the JSON wire format /metrics serves.
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"p50":50`, `"p95":95`, `"p99":99`} {
		if !strings.Contains(string(b), key) {
			t.Errorf("JSON missing %s: %s", key, b)
		}
	}
}

func TestSnapshotQuantilesEmptyHistogram(t *testing.T) {
	s := newHistogram(MillisBuckets).Snapshot()
	if s.P50 != 0 || s.P95 != 0 || s.P99 != 0 {
		t.Errorf("empty histogram quantiles = (%v, %v, %v), want zeros", s.P50, s.P95, s.P99)
	}
}

func TestSLORollup(t *testing.T) {
	reg := NewRegistry()
	for i := 1; i <= 100; i++ {
		reg.Histogram("core.stage.scan_ms", MillisBuckets).Observe(float64(i))
	}
	reg.Histogram("core.stage.crawl_ms", MillisBuckets).Observe(3)
	reg.Histogram("squat.match.scan_us", MicrosBuckets).Observe(1)
	reg.Histogram("core.stage.empty_ms", MillisBuckets) // zero observations

	snap := reg.Snapshot()
	all := snap.SLORollup("")
	if len(all) != 3 {
		t.Fatalf("SLORollup(\"\") = %d entries, want 3 (empty histogram skipped)", len(all))
	}
	// Sorted by name.
	if all[0].Name != "core.stage.crawl_ms" || all[2].Name != "squat.match.scan_us" {
		t.Errorf("rollup order: %v, %v, %v", all[0].Name, all[1].Name, all[2].Name)
	}

	stages := snap.SLORollup("core.stage.")
	if len(stages) != 2 {
		t.Fatalf("SLORollup(core.stage.) = %d entries, want 2", len(stages))
	}
	scan := stages[1]
	if scan.Name != "core.stage.scan_ms" || scan.Count != 100 {
		t.Fatalf("unexpected entry: %+v", scan)
	}
	want := snap.Histograms["core.stage.scan_ms"]
	if scan.P50 != want.P50 || scan.P95 != want.P95 || scan.P99 != want.P99 || scan.Max != want.Max {
		t.Errorf("rollup %+v disagrees with histogram snapshot %+v", scan, want)
	}
}
