// Package obs is the pipeline-wide observability layer: a concurrency-safe
// metrics registry (counters, gauges, fixed-bucket histograms), lightweight
// stage spans with a ring-buffer trace recorder, and a debug HTTP endpoint
// exposing both plus pprof.
//
// The paper's system processed a 224M-record DNS snapshot and ~1M crawled
// pages; knowing where time and errors go is a precondition for sharding or
// caching any of it. Every hot path of the reproduction (DNS server/prober,
// squatting matcher, crawler pool, pipeline stages) reports here, and the
// registry is snapshot-able as JSON so benches and the monitor can persist
// per-stage accounting next to their artifacts.
//
// All of obs is stdlib-only and nil-tolerant: resolving a metric from a nil
// *Registry returns a live but unregistered instance, so instrumented
// components need no "metrics enabled?" branches on their hot paths.
package obs

import (
	"expvar"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing int64, safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
//
//squat:hot
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// atomicFloat is a float64 with atomic load/store/add via bit casting.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) load() float64   { return math.Float64frombits(f.bits.Load()) }
func (f *atomicFloat) store(v float64) { f.bits.Store(math.Float64bits(v)) }

//squat:hot
func (f *atomicFloat) add(delta float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Gauge is an instantaneous float64 value (queue depths, last durations).
type Gauge struct {
	v atomicFloat
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.v.store(v) }

// Add shifts the gauge by delta (use +1/-1 for in-flight tracking).
func (g *Gauge) Add(delta float64) { g.v.add(delta) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v.load() }

// Histogram accumulates observations into fixed buckets. Observe is
// lock-free; Snapshot is approximate under concurrent writes (counts may
// trail sums by in-flight observations), which is fine for monitoring.
type Histogram struct {
	bounds  []float64 // sorted finite upper bounds
	buckets []atomic.Int64
	over    atomic.Int64 // observations above the last bound
	count   atomic.Int64
	sum     atomicFloat
	minB    atomic.Uint64 // float bits, initialised to +Inf
	maxB    atomic.Uint64 // float bits, initialised to -Inf
}

// MillisBuckets is the default bound set for durations in milliseconds,
// spanning sub-millisecond DNS handling to multi-second crawl rounds.
var MillisBuckets = []float64{0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// MicrosBuckets is the default bound set for per-item scan times in
// microseconds (e.g. one matcher classification).
var MicrosBuckets = []float64{0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000}

// CountBuckets is a generic bound set for small cardinalities (batch sizes,
// redirect-chain lengths).
var CountBuckets = []float64{0, 1, 2, 5, 10, 25, 50, 100, 250, 500, 1000}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	h := &Histogram{bounds: bs, buckets: make([]atomic.Int64, len(bs))}
	h.minB.Store(math.Float64bits(math.Inf(1)))
	h.maxB.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// Observe records one value.
//
//squat:hot
func (h *Histogram) Observe(v float64) {
	if i := sort.SearchFloat64s(h.bounds, v); i < len(h.buckets) {
		h.buckets[i].Add(1)
	} else {
		h.over.Add(1)
	}
	h.count.Add(1)
	h.sum.add(v)
	for {
		old := h.minB.Load()
		if v >= math.Float64frombits(old) || h.minB.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.maxB.Load()
		if v <= math.Float64frombits(old) || h.maxB.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// ObserveSince records the elapsed time since start, in milliseconds.
// Pair with MillisBuckets.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(float64(time.Since(start)) / float64(time.Millisecond))
}

// Count returns the number of observations so far.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Bucket is one histogram bucket in a snapshot: the count of observations
// v <= Le that fell in no lower bucket.
type Bucket struct {
	Le    float64 `json:"le"`
	Count int64   `json:"count"`
}

// HistogramSnapshot is the JSON-able state of a Histogram. P50/P95/P99
// are the bucket-interpolated quantiles (see Quantile), precomputed so
// /metrics consumers and SLO rollups need no bucket math of their own.
type HistogramSnapshot struct {
	Count    int64    `json:"count"`
	Sum      float64  `json:"sum"`
	Mean     float64  `json:"mean"`
	Min      float64  `json:"min"`
	Max      float64  `json:"max"`
	P50      float64  `json:"p50"`
	P95      float64  `json:"p95"`
	P99      float64  `json:"p99"`
	Buckets  []Bucket `json:"buckets"`
	Overflow int64    `json:"overflow"` // observations above the last bound
}

// Snapshot captures the histogram state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:    h.count.Load(),
		Sum:      h.sum.load(),
		Buckets:  make([]Bucket, len(h.bounds)),
		Overflow: h.over.Load(),
	}
	for i, b := range h.bounds {
		s.Buckets[i] = Bucket{Le: b, Count: h.buckets[i].Load()}
	}
	if s.Count > 0 {
		s.Mean = s.Sum / float64(s.Count)
		s.Min = math.Float64frombits(h.minB.Load())
		s.Max = math.Float64frombits(h.maxB.Load())
		s.P50 = s.Quantile(0.50)
		s.P95 = s.Quantile(0.95)
		s.P99 = s.Quantile(0.99)
	}
	return s
}

// Quantile estimates the q-th quantile (0..1) by linear interpolation
// within buckets. Values in the overflow bucket report the highest bound.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	var cum int64
	lower := s.Min
	for _, b := range s.Buckets {
		if float64(cum+b.Count) >= rank && b.Count > 0 {
			frac := (rank - float64(cum)) / float64(b.Count)
			if frac < 0 {
				frac = 0
			}
			lo := lower
			if lo < s.Min {
				lo = s.Min
			}
			hi := b.Le
			if hi > s.Max {
				hi = s.Max
			}
			if hi < lo {
				hi = lo
			}
			return lo + frac*(hi-lo)
		}
		cum += b.Count
		lower = b.Le
	}
	return s.Max
}

// Registry is a concurrency-safe namespace of metrics. Metrics are created
// on first resolution and shared thereafter; components resolve their
// handles once at construction so hot paths pay only an atomic op.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	funcs    map[string]func() any
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		funcs:    map[string]func() any{},
	}
}

// Counter returns the named counter, creating it if needed. On a nil
// registry it returns a live but unregistered counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return &Counter{}
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// bounds if needed (nil bounds default to MillisBuckets). The bounds of the
// first creation win; later callers share the existing histogram.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = MillisBuckets
	}
	if r == nil {
		return newHistogram(bounds)
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// RegisterFunc exposes an arbitrary JSON-able value in snapshots under the
// given name (e.g. a per-host failure map owned by a component). The
// function must be safe for concurrent calls.
func (r *Registry) RegisterFunc(name string, fn func() any) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[name] = fn
}

// Snapshot is the JSON-able state of a whole registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	Values     map[string]any               `json:"values,omitempty"`
}

// Snapshot captures every metric. Safe to call while writers are active.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	funcs := make(map[string]func() any, len(r.funcs))
	for k, v := range r.funcs {
		funcs[k] = v
	}
	r.mu.RUnlock()

	for k, v := range counters {
		s.Counters[k] = v.Value()
	}
	for k, v := range gauges {
		s.Gauges[k] = v.Value()
	}
	for k, v := range hists {
		s.Histograms[k] = v.Snapshot()
	}
	if len(funcs) > 0 {
		s.Values = map[string]any{}
		for k, fn := range funcs {
			s.Values[k] = fn()
		}
	}
	return s
}

// SLOEntry is one histogram's latency rollup: the quantiles an SLO is
// written against, without the bucket detail.
type SLOEntry struct {
	Name  string  `json:"name"`
	Count int64   `json:"count"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// SLORollup extracts per-histogram quantile rollups from the snapshot
// for histograms whose name starts with prefix ("" selects all), sorted
// by name. Empty histograms are skipped — a zero-observation stage has
// no latency distribution to report against.
func (s Snapshot) SLORollup(prefix string) []SLOEntry {
	out := make([]SLOEntry, 0, len(s.Histograms))
	for name, h := range s.Histograms {
		if h.Count == 0 || !strings.HasPrefix(name, prefix) {
			continue
		}
		out = append(out, SLOEntry{Name: name, Count: h.Count, P50: h.P50, P95: h.P95, P99: h.P99, Max: h.Max})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

var expvarMu sync.Mutex

// PublishExpvar exposes the registry's snapshot as an expvar under the
// given name (visible at /debug/vars). Publishing the same name twice is a
// no-op rather than the expvar panic.
func (r *Registry) PublishExpvar(name string) {
	if r == nil {
		return
	}
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
