package obs

import (
	"encoding/json"
	"math"
	"sync"
	"testing"
	"time"
)

// TestConcurrentHammer exercises counters, gauges and histograms from many
// goroutines at once; run with -race to verify the synchronisation.
func TestConcurrentHammer(t *testing.T) {
	reg := NewRegistry()
	const goroutines = 16
	const perG = 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := reg.Counter("hammer.count")
			h := reg.Histogram("hammer.hist", []float64{1, 10, 100})
			ga := reg.Gauge("hammer.gauge")
			for i := 0; i < perG; i++ {
				c.Inc()
				h.Observe(float64(i % 200))
				ga.Add(1)
				ga.Add(-1)
				if i%100 == 0 {
					// Concurrent snapshots must not race with writers.
					_ = reg.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()

	if got := reg.Counter("hammer.count").Value(); got != goroutines*perG {
		t.Errorf("counter = %d, want %d", got, goroutines*perG)
	}
	hs := reg.Histogram("hammer.hist", nil).Snapshot()
	if hs.Count != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", hs.Count, goroutines*perG)
	}
	var bucketSum int64
	for _, b := range hs.Buckets {
		bucketSum += b.Count
	}
	if bucketSum+hs.Overflow != hs.Count {
		t.Errorf("bucket counts %d + overflow %d != count %d", bucketSum, hs.Overflow, hs.Count)
	}
	if hs.Min != 0 || hs.Max != 199 {
		t.Errorf("min/max = %v/%v, want 0/199", hs.Min, hs.Max)
	}
	if g := reg.Gauge("hammer.gauge").Value(); g != 0 {
		t.Errorf("gauge = %v, want 0", g)
	}
}

func TestRegistrySharesInstances(t *testing.T) {
	reg := NewRegistry()
	if reg.Counter("a") != reg.Counter("a") {
		t.Error("Counter did not return the shared instance")
	}
	if reg.Gauge("g") != reg.Gauge("g") {
		t.Error("Gauge did not return the shared instance")
	}
	if reg.Histogram("h", nil) != reg.Histogram("h", []float64{1, 2}) {
		t.Error("Histogram did not return the shared instance")
	}
}

func TestNilRegistrySafe(t *testing.T) {
	var reg *Registry
	reg.Counter("x").Inc()
	reg.Gauge("y").Set(3)
	reg.Histogram("z", nil).Observe(1)
	reg.RegisterFunc("f", func() any { return 1 })
	reg.PublishExpvar("nil-reg")
	s := reg.Snapshot()
	if len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Histograms) != 0 {
		t.Errorf("nil registry snapshot not empty: %+v", s)
	}
}

func TestSnapshotJSON(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("dns.queries").Add(42)
	reg.Gauge("crawler.inflight").Set(3)
	h := reg.Histogram("probe.rtt_ms", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)
	reg.RegisterFunc("hosts", func() any { return map[string]int64{"evil.com": 2} })

	raw, err := json.Marshal(reg.Snapshot())
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back struct {
		Counters   map[string]int64             `json:"counters"`
		Gauges     map[string]float64           `json:"gauges"`
		Histograms map[string]HistogramSnapshot `json:"histograms"`
		Values     map[string]map[string]int64  `json:"values"`
	}
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Counters["dns.queries"] != 42 {
		t.Errorf("counter round-trip = %d", back.Counters["dns.queries"])
	}
	if back.Gauges["crawler.inflight"] != 3 {
		t.Errorf("gauge round-trip = %v", back.Gauges["crawler.inflight"])
	}
	hs := back.Histograms["probe.rtt_ms"]
	if hs.Count != 3 || hs.Overflow != 1 || len(hs.Buckets) != 2 {
		t.Errorf("histogram round-trip = %+v", hs)
	}
	if back.Values["hosts"]["evil.com"] != 2 {
		t.Errorf("func value round-trip = %+v", back.Values)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{10, 20, 30, 40})
	for i := 1; i <= 40; i++ {
		h.Observe(float64(i))
	}
	s := h.Snapshot()
	if q := s.Quantile(0.5); math.Abs(q-20) > 5 {
		t.Errorf("p50 = %v, want ~20", q)
	}
	if q := s.Quantile(1); q != 40 {
		t.Errorf("p100 = %v, want 40", q)
	}
	if q := (HistogramSnapshot{}).Quantile(0.5); q != 0 {
		t.Errorf("empty quantile = %v, want 0", q)
	}
}

func TestObserveSince(t *testing.T) {
	h := newHistogram(MillisBuckets)
	h.ObserveSince(time.Now().Add(-5 * time.Millisecond))
	s := h.Snapshot()
	if s.Count != 1 || s.Sum < 4 {
		t.Errorf("ObserveSince recorded %+v, want one ~5ms observation", s)
	}
}

func TestPublishExpvarIdempotent(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x").Inc()
	reg.PublishExpvar("obs-test-registry")
	reg.PublishExpvar("obs-test-registry") // must not panic
}
