package obs

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestDebugEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("dnsx.server.queries").Add(5)
	reg.Histogram("probe.rtt_ms", nil).Observe(1.5)
	rec := NewRecorder(4)
	ctx := WithRecorder(context.Background(), rec)
	runCtx, root := StartSpan(ctx, "round")
	_, child := StartSpan(runCtx, "crawl")
	child.End()
	root.End()

	srv := httptest.NewServer(NewMux(reg, rec))
	defer srv.Close()

	t.Run("metrics", func(t *testing.T) {
		var snap Snapshot
		getJSON(t, srv.URL+"/metrics", &snap)
		if snap.Counters["dnsx.server.queries"] != 5 {
			t.Errorf("counters = %v", snap.Counters)
		}
		if snap.Histograms["probe.rtt_ms"].Count != 1 {
			t.Errorf("histograms = %v", snap.Histograms)
		}
	})

	t.Run("spans", func(t *testing.T) {
		var traces []SpanSnapshot
		getJSON(t, srv.URL+"/spans", &traces)
		if len(traces) != 1 || traces[0].Name != "round" {
			t.Fatalf("traces = %+v", traces)
		}
		if len(traces[0].Children) != 1 || traces[0].Children[0].Name != "crawl" {
			t.Errorf("children = %+v", traces[0].Children)
		}
	})

	t.Run("spans-limit", func(t *testing.T) {
		var traces []SpanSnapshot
		getJSON(t, srv.URL+"/spans?n=0", &traces)
		if len(traces) != 0 {
			t.Errorf("n=0 returned %d traces", len(traces))
		}
	})

	t.Run("index", func(t *testing.T) {
		body := get(t, srv.URL+"/")
		if !strings.Contains(body, "/metrics") || !strings.Contains(body, "/spans") {
			t.Errorf("index missing routes: %q", body)
		}
	})

	t.Run("pprof", func(t *testing.T) {
		body := get(t, srv.URL+"/debug/pprof/cmdline")
		if body == "" {
			t.Error("pprof cmdline empty")
		}
	})

	t.Run("notfound", func(t *testing.T) {
		resp, err := http.Get(srv.URL + "/nope")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("status = %d, want 404", resp.StatusCode)
		}
	})
}

func TestNilMux(t *testing.T) {
	srv := httptest.NewServer(NewMux(nil, nil))
	defer srv.Close()
	var snap Snapshot
	getJSON(t, srv.URL+"/metrics", &snap)
	var traces []SpanSnapshot
	getJSON(t, srv.URL+"/spans", &traces)
	if len(traces) != 0 {
		t.Errorf("nil recorder served traces: %+v", traces)
	}
}

func TestServe(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x").Inc()
	d, err := Serve("127.0.0.1:0", reg, NewRecorder(2))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	var snap Snapshot
	getJSON(t, "http://"+d.Addr()+"/metrics", &snap)
	if snap.Counters["x"] != 1 {
		t.Errorf("served counters = %v", snap.Counters)
	}
}

// TestServerTimeoutsSet pins the hardening: every listener built through
// obs must carry the slowloris/read/idle bounds (the debug port used to
// ship a zero-value http.Server).
func TestServerTimeoutsSet(t *testing.T) {
	srv := NewServer(http.NewServeMux())
	if srv.ReadHeaderTimeout != ReadHeaderTimeout || srv.ReadHeaderTimeout <= 0 {
		t.Errorf("ReadHeaderTimeout = %v", srv.ReadHeaderTimeout)
	}
	if srv.ReadTimeout != ReadTimeout || srv.ReadTimeout <= 0 {
		t.Errorf("ReadTimeout = %v", srv.ReadTimeout)
	}
	if srv.IdleTimeout != IdleTimeout || srv.IdleTimeout <= 0 {
		t.Errorf("IdleTimeout = %v", srv.IdleTimeout)
	}
	if srv.WriteTimeout != 0 {
		t.Errorf("WriteTimeout = %v, want 0 (pprof streams)", srv.WriteTimeout)
	}
}

// TestGracefulShutdownDrainsInFlight: a request already being served when
// Shutdown begins must complete, not be dropped the way http.Server.Close
// used to drop it.
func TestGracefulShutdownDrainsInFlight(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	d, err := Serve("127.0.0.1:0", NewRegistry(), nil, Route{
		Pattern: "/slow",
		Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			close(entered)
			<-release
			io.WriteString(w, "done")
		}),
	})
	if err != nil {
		t.Fatal(err)
	}

	type result struct {
		body string
		err  error
	}
	got := make(chan result, 1)
	go func() {
		resp, err := http.Get("http://" + d.Addr() + "/slow")
		if err != nil {
			got <- result{err: err}
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		got <- result{body: string(b), err: err}
	}()

	<-entered
	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- d.Shutdown(ctx)
	}()
	// Shutdown is now waiting on the in-flight handler; release it and
	// both the request and the shutdown must succeed.
	close(release)
	if r := <-got; r.err != nil || r.body != "done" {
		t.Fatalf("in-flight request dropped during shutdown: body=%q err=%v", r.body, r.err)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("graceful shutdown failed: %v", err)
	}

	// The listener is gone: new connections must be refused.
	if _, err := http.Get("http://" + d.Addr() + "/slow"); err == nil {
		t.Fatal("server still accepting after Shutdown")
	}
}

func get(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	if err := json.Unmarshal([]byte(get(t, url)), v); err != nil {
		t.Fatalf("GET %s: bad JSON: %v", url, err)
	}
}
