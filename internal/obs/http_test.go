package obs

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestDebugEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("dnsx.server.queries").Add(5)
	reg.Histogram("probe.rtt_ms", nil).Observe(1.5)
	rec := NewRecorder(4)
	ctx := WithRecorder(context.Background(), rec)
	runCtx, root := StartSpan(ctx, "round")
	_, child := StartSpan(runCtx, "crawl")
	child.End()
	root.End()

	srv := httptest.NewServer(NewMux(reg, rec))
	defer srv.Close()

	t.Run("metrics", func(t *testing.T) {
		var snap Snapshot
		getJSON(t, srv.URL+"/metrics", &snap)
		if snap.Counters["dnsx.server.queries"] != 5 {
			t.Errorf("counters = %v", snap.Counters)
		}
		if snap.Histograms["probe.rtt_ms"].Count != 1 {
			t.Errorf("histograms = %v", snap.Histograms)
		}
	})

	t.Run("spans", func(t *testing.T) {
		var traces []SpanSnapshot
		getJSON(t, srv.URL+"/spans", &traces)
		if len(traces) != 1 || traces[0].Name != "round" {
			t.Fatalf("traces = %+v", traces)
		}
		if len(traces[0].Children) != 1 || traces[0].Children[0].Name != "crawl" {
			t.Errorf("children = %+v", traces[0].Children)
		}
	})

	t.Run("spans-limit", func(t *testing.T) {
		var traces []SpanSnapshot
		getJSON(t, srv.URL+"/spans?n=0", &traces)
		if len(traces) != 0 {
			t.Errorf("n=0 returned %d traces", len(traces))
		}
	})

	t.Run("index", func(t *testing.T) {
		body := get(t, srv.URL+"/")
		if !strings.Contains(body, "/metrics") || !strings.Contains(body, "/spans") {
			t.Errorf("index missing routes: %q", body)
		}
	})

	t.Run("pprof", func(t *testing.T) {
		body := get(t, srv.URL+"/debug/pprof/cmdline")
		if body == "" {
			t.Error("pprof cmdline empty")
		}
	})

	t.Run("notfound", func(t *testing.T) {
		resp, err := http.Get(srv.URL + "/nope")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("status = %d, want 404", resp.StatusCode)
		}
	})
}

func TestNilMux(t *testing.T) {
	srv := httptest.NewServer(NewMux(nil, nil))
	defer srv.Close()
	var snap Snapshot
	getJSON(t, srv.URL+"/metrics", &snap)
	var traces []SpanSnapshot
	getJSON(t, srv.URL+"/spans", &traces)
	if len(traces) != 0 {
		t.Errorf("nil recorder served traces: %+v", traces)
	}
}

func TestServe(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x").Inc()
	d, err := Serve("127.0.0.1:0", reg, NewRecorder(2))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	var snap Snapshot
	getJSON(t, "http://"+d.Addr()+"/metrics", &snap)
	if snap.Counters["x"] != 1 {
		t.Errorf("served counters = %v", snap.Counters)
	}
}

func get(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	if err := json.Unmarshal([]byte(get(t, url)), v); err != nil {
		t.Fatalf("GET %s: bad JSON: %v", url, err)
	}
}
