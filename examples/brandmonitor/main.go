// Brandmonitor demonstrates the paper's §7 deployment mode: a single
// online service (here: paypal) runs a dedicated scanner over newly
// observed DNS registrations, flags squatting domains that impersonate its
// brand, crawls them, and classifies the phishing ones.
//
// The "Internet" is a small synthetic world served over real HTTP; the
// monitor itself only uses the public pipeline APIs a real deployment
// would use.
package main

import (
	"context"
	"fmt"
	"log"

	"squatphi/internal/core"
	"squatphi/internal/features"
	"squatphi/internal/squat"
	"squatphi/internal/webworld"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("brandmonitor: ")
	const brand = "paypal"

	p, err := core.New(core.Config{
		World:           webworld.Config{SquattingDomains: 2500, NonSquattingPhish: 300, Seed: 77},
		DNSNoiseRecords: 8000,
		ForestTrees:     20,
		Seed:            42,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer p.Close()
	ctx := context.Background()

	// The dedicated matcher watches only this brand.
	b, ok := p.World.Brands.Lookup(brand)
	if !ok {
		log.Fatalf("brand %s not in universe", brand)
	}
	watch := squat.NewMatcher([]squat.Brand{b.Brand})

	// Scan the "newly registered domains" stream (the DNS snapshot).
	var hits []squat.Candidate
	domains := p.DNSSnapshot().Domains()
	for _, d := range domains {
		if c, ok := watch.Match(d); ok {
			hits = append(hits, c)
		}
	}
	fmt.Printf("%d domains scanned, %d %s-squatting registrations found:\n", len(domains), len(hits), brand)
	byType := map[squat.Type]int{}
	for _, h := range hits {
		byType[h.Type]++
	}
	for _, t := range squat.AllTypes {
		fmt.Printf("  %-10s %d\n", t, byType[t])
	}

	// Train the general classifier once, then score this brand's
	// squatting pages.
	gt, err := p.BuildGroundTruth(ctx, 300)
	if err != nil {
		log.Fatal(err)
	}
	clf := p.TrainClassifier(gt, features.AllFeatures())
	fmt.Printf("\nclassifier CV: AUC=%.3f FP=%.3f FN=%.3f\n",
		clf.Eval.AUC, clf.Eval.Confusion.FPR(), clf.Eval.Confusion.FNR())

	var watchDomains []string
	for _, h := range hits {
		watchDomains = append(watchDomains, h.Domain)
	}
	results, err := p.CrawlDomains(ctx, 0, watchDomains)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nflagged %s squatting pages:\n", brand)
	flagged := 0
	for _, res := range results {
		if res.Web.Live && !res.Web.Redirected() {
			if score := core.ClassifyCapture(clf, res.Web); score >= 0.5 {
				site, _ := p.World.Site(res.Domain)
				verdict := "FALSE POSITIVE"
				if site != nil && site.IsPhishingAt(0) {
					verdict = "confirmed phishing"
				}
				fmt.Printf("  %-35s score=%.2f  %s\n", res.Domain, score, verdict)
				flagged++
			}
		}
	}
	if flagged == 0 {
		fmt.Println("  (none this run — phishing prevalence is ~0.2%; try a different -seed)")
	}
}
