// Dnsprobe demonstrates the ActiveDNS-style measurement substrate: it
// builds a synthetic zone, serves it from the built-in authoritative DNS
// server over UDP, actively probes candidate squatting domains with the
// RFC 1035 codec, and prints which ones resolve.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"squatphi/internal/dnsx"
	"squatphi/internal/simrand"
	"squatphi/internal/squat"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dnsprobe: ")

	// 1. Build the zone: some squatting registrations exist, most do not.
	rng := simrand.New(7)
	store := dnsx.NewStore()
	gen := squat.NewGenerator()
	brand := squat.NewBrand("facebook.com")
	candidates := gen.Generate(brand)
	registered := 0
	for i, c := range candidates {
		if i%7 == 0 { // an attacker registered every 7th candidate
			store.Add(c.Domain, dnsx.RandomIP(rng))
			registered++
		}
	}
	log.Printf("zone: %d of %d candidates registered", registered, len(candidates))

	// 2. Serve it over UDP.
	srv, err := dnsx.NewServer(store)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	log.Printf("authoritative server on %s", srv.Addr())

	// 3. Actively probe all candidates.
	prober := &dnsx.Prober{Addr: srv.Addr(), Timeout: time.Second, Parallelism: 16}
	var names []string
	typeOf := map[string]squat.Type{}
	for _, c := range candidates {
		names = append(names, c.Domain)
		typeOf[c.Domain] = c.Type
	}
	start := time.Now()
	records, err := prober.Probe(context.Background(), names)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("probed %d names in %s, %d resolved (server answered %d queries)",
		len(names), time.Since(start).Round(time.Millisecond), len(records), srv.Queries())

	// 4. Show a sample of live squatting registrations per type.
	shown := map[squat.Type]int{}
	for _, rec := range records {
		t := typeOf[rec.Domain]
		if shown[t] >= 2 {
			continue
		}
		shown[t]++
		fmt.Printf("  %-10s %-30s -> %s\n", t, rec.Domain, rec.IPString())
	}
}
