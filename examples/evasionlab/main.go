// Evasionlab walks through the three evasion techniques of paper §4.2 on a
// hand-built phishing page, showing what each one hides, what the
// classical detectors would see, and how the OCR feature path defeats them.
package main

import (
	"fmt"
	"strings"

	"squatphi/internal/evasion"
	"squatphi/internal/imghash"
	"squatphi/internal/ocr"
	"squatphi/internal/render"
	"squatphi/internal/simrand"
)

const original = `<html><head><title>Citizens Bank - Log In</title></head><body>
<img src="/logo.png" alt="citizens bank">
<h1>Welcome to Citizens Bank</h1>
<p>Sign in to your citizens account to manage payments</p>
<form><input type=email placeholder="Email"><input type=password placeholder="Password">
<input type=submit value="Log In"></form></body></html>`

// The attacker's page: no "citizens" anywhere in the HTML, the brand lives
// in the logo pixels; obfuscated JS; randomised layout via the page's own
// meta tag.
const phishing = `<html><head><title>Secure payment center</title>
<meta name="layout-seed" content="424242"></head><body>
<img src="/logo.png" alt="">
<h1>Verify your billing information</h1>
<script>var c=[99,105,116];var s="";for(var i=0;i<c.length;i++){s+=String.fromCharCode(c[i]^0);}eval(s);</script>
<form><input type=email placeholder="Email"><input type=password placeholder="Password">
<input type=text placeholder="Card number"><input type=submit value="Verify Now"></form>
</body></html>`

func main() {
	brand := "citizens"
	assets := map[string]string{"/logo.png": "Citizens Bank"}

	origShot := render.Screenshot(original, render.Options{Assets: assets})
	phishShot := render.Screenshot(phishing, render.Options{Assets: assets})

	fmt.Println("== 1. String obfuscation ==")
	fmt.Printf("  brand %q in original HTML: %v\n", brand, strings.Contains(strings.ToLower(original), brand))
	fmt.Printf("  brand %q in phishing HTML: %v\n", brand, strings.Contains(strings.ToLower(phishing), brand))
	fmt.Println("  -> keyword-matching detectors see nothing")

	fmt.Println("\n== 2. Layout obfuscation ==")
	d := imghash.Distance(imghash.Perceptual(origShot), imghash.Perceptual(phishShot))
	same := imghash.Distance(imghash.Perceptual(origShot), imghash.Perceptual(render.Screenshot(original, render.Options{Assets: assets})))
	fmt.Printf("  pHash distance original vs itself:   %d\n", same)
	fmt.Printf("  pHash distance original vs phishing: %d\n", d)
	fmt.Println("  -> visual-similarity detectors with a tight threshold miss it")

	fmt.Println("\n== 3. Code obfuscation ==")
	rep := evasion.Analyze(phishing, phishShot, brand, origShot)
	fmt.Printf("  eval calls: %d, string-construction calls: %d, flagged: %v\n",
		rep.JS.EvalCalls, rep.JS.StringFuncCalls, rep.CodeObfuscated)

	fmt.Println("\n== 4. The OCR counter-measure ==")
	var engine ocr.Engine
	words := engine.RecognizeWords(phishShot)
	sc := ocr.NewSpellchecker(append([]string{"citizens", "bank"}, "password", "email", "verify"))
	words = sc.CorrectAll(words)
	joined := strings.Join(words, " ")
	fmt.Printf("  OCR keywords: %s\n", joined)
	fmt.Printf("  brand recovered from pixels: %v\n", strings.Contains(joined, brand))
	fmt.Printf("  credential form visible: %v\n", strings.Contains(joined, "password"))

	fmt.Println("\n== 5. Full evasion report ==")
	fmt.Printf("  %+v\n", struct {
		Layout    int
		StringObf bool
		CodeObf   bool
	}{rep.LayoutDistance, rep.StringObfuscated, rep.CodeObfuscated})

	// Bonus: how unstable is the layout under different seeds?
	fmt.Println("\n== 6. Layout distance across obfuscation seeds ==")
	for _, seed := range []uint64{1, 2, 3} {
		shot := render.Screenshot(phishing, render.Options{Assets: assets, Perturb: simrand.New(seed)})
		fmt.Printf("  seed %d: distance %d\n", seed,
			imghash.Distance(imghash.Perceptual(origShot), imghash.Perceptual(shot)))
	}
}
