// Quickstart demonstrates the SquatPhi public API in five minutes:
// generate squatting candidates for a brand, match observed domains
// against a brand set, render + OCR a phishing page that hides its brand
// from the HTML, and measure its evasion profile.
package main

import (
	"fmt"
	"strings"

	"squatphi/internal/evasion"
	"squatphi/internal/ocr"
	"squatphi/internal/render"
	"squatphi/internal/squat"
)

func main() {
	// 1. Generate squatting candidates for a brand (dnstwist-style).
	brand := squat.NewBrand("paypal.com")
	gen := squat.NewGenerator()
	fmt.Println("-- a few squatting candidates for paypal.com --")
	byType := map[squat.Type]int{}
	for _, c := range gen.Generate(brand) {
		if byType[c.Type] >= 2 {
			continue
		}
		byType[c.Type]++
		fmt.Printf("  %-10s %s\n", c.Type, c.Domain)
	}

	// 2. Match observed DNS domains against a monitored brand set.
	matcher := squat.NewMatcher([]squat.Brand{
		squat.NewBrand("paypal.com"),
		squat.NewBrand("facebook.com"),
	})
	fmt.Println("\n-- classifying observed domains --")
	for _, d := range []string{
		"paypal-cash.com", "xn--fcebook-8va.com", "paypa1.net",
		"facebook.audi", "weather-report.org",
	} {
		if c, ok := matcher.Match(d); ok {
			fmt.Printf("  %-25s -> %s squatting of %s\n", d, c.Type, c.Brand.Name)
		} else {
			fmt.Printf("  %-25s -> not squatting\n", d)
		}
	}

	// 3. A phishing page hides "paypal" from its HTML (string obfuscation):
	// the brand exists only inside the logo image. OCR on the rendered
	// screenshot recovers it anyway — the paper's key trick.
	phishHTML := `<html><head><title>Log in to your account</title></head><body>
		<img src="/logo.png" alt="">
		<h1>Your account has been limited</h1>
		<form><input type=email placeholder="Email or phone">
		<input type=password placeholder="Password">
		<input type=submit value="Log In"></form></body></html>`
	shot := render.Screenshot(phishHTML, render.Options{
		Assets: map[string]string{"/logo.png": "PayPal"},
	})
	var engine ocr.Engine
	text := engine.Recognize(shot)
	fmt.Println("\n-- OCR of the rendered screenshot --")
	fmt.Printf("  HTML contains 'paypal': %v\n", strings.Contains(strings.ToLower(phishHTML), "paypal"))
	fmt.Printf("  OCR text contains 'paypal': %v\n", strings.Contains(strings.ToLower(text), "paypal"))

	// 4. Evasion profile of the page.
	rep := evasion.Analyze(phishHTML, shot, "paypal", nil)
	fmt.Println("\n-- evasion report --")
	fmt.Printf("  string obfuscated: %v\n", rep.StringObfuscated)
	fmt.Printf("  code obfuscated:   %v\n", rep.CodeObfuscated)
}
