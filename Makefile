# SquatPhi reproduction — convenience targets. Everything is stdlib Go;
# `go build ./...` with Go >= 1.22 is the only real requirement.

GO ?= go

.PHONY: all build test test-short race chaos bench bench-all vet fmt fuzz paperbench pipeline clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Race detector + vet across the whole tree (CI gate for the concurrent
# paths: obs registry/spans, crawler pool, DNS server/prober, sharded
# store, scan/score pools). The race detector is 5-20x slower than native;
# the heavyweight packages (core, experiments) need more than the default
# 10m per-package budget on small machines.
race: chaos
	$(GO) vet ./...
	$(GO) test -race -timeout 45m ./...

# Deterministic chaos suite: drives the crawler, DNS prober, and whois
# client through seeded fault injection (internal/faultx) under the race
# detector. Fault plans are pure functions of (seed, key, attempt), so the
# tests assert exact counter values and identical snapshots at any worker
# count; the seed matrix is fixed inside the test files. Runs first in the
# `race` gate so resilience regressions fail fast.
chaos:
	$(GO) test -race -count=1 -timeout 10m \
		./internal/faultx ./internal/retry ./internal/crawler \
		./internal/dnsx ./internal/whois

# Root benchmarks (paper artifacts + the parallel scan/score/fit spine),
# then the scan sweep artifact: ns/op and records/sec at 1, NumCPU/2 and
# NumCPU workers with a serial-equivalence check, written to BENCH_scan.json.
bench:
	$(GO) test -bench=. -benchmem .
	$(GO) run ./cmd/scanbench -out BENCH_scan.json

# Benchmarks across every package (slow).
bench-all:
	$(GO) test -bench=. -benchmem ./...

# Short fuzz campaigns on the parser-facing packages.
fuzz:
	$(GO) test -fuzz FuzzExtract -fuzztime 30s ./internal/htmlx/
	$(GO) test -fuzz FuzzAnalyze -fuzztime 30s ./internal/jsx/
	$(GO) test -fuzz FuzzUnpack -fuzztime 30s ./internal/dnsx/
	$(GO) test -fuzz FuzzParseZone -fuzztime 30s ./internal/dnsx/

# Regenerate every paper table and figure.
paperbench:
	$(GO) run ./cmd/paperbench | tee paperbench_output.txt

# End-to-end pipeline demo.
pipeline:
	$(GO) run ./cmd/squatphi -domains 4000 -phish 400

clean:
	rm -f test_output.txt bench_output.txt BENCH_scan.json
