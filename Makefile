# SquatPhi reproduction — convenience targets. Everything is stdlib Go;
# `go build ./...` with Go >= 1.22 is the only real requirement.

GO ?= go

.PHONY: all build test test-short race bench vet fmt fuzz paperbench pipeline clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Race detector + vet across the whole tree (CI gate for the concurrent
# paths: obs registry/spans, crawler pool, DNS server/prober).
race:
	$(GO) vet ./...
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Short fuzz campaigns on the parser-facing packages.
fuzz:
	$(GO) test -fuzz FuzzExtract -fuzztime 30s ./internal/htmlx/
	$(GO) test -fuzz FuzzAnalyze -fuzztime 30s ./internal/jsx/
	$(GO) test -fuzz FuzzUnpack -fuzztime 30s ./internal/dnsx/
	$(GO) test -fuzz FuzzParseZone -fuzztime 30s ./internal/dnsx/

# Regenerate every paper table and figure.
paperbench:
	$(GO) run ./cmd/paperbench | tee paperbench_output.txt

# End-to-end pipeline demo.
pipeline:
	$(GO) run ./cmd/squatphi -domains 4000 -phish 400

clean:
	rm -f test_output.txt bench_output.txt
