# SquatPhi reproduction — convenience targets. Everything is stdlib Go;
# `go build ./...` with Go >= 1.22 is the only real requirement.

GO ?= go

.PHONY: all build test test-short race chaos bench bench-all bench-check vet fmt fmt-check lint lint-list fuzz fuzz-smoke cover provenance-check serve-smoke verify paperbench pipeline clean

all: build vet fmt-check lint test

build:
	$(GO) build ./...

# Two vet passes: the default analyzer set, then an explicit second pass
# that force-enables the unreachable-code and unused-result checks (they
# are off by default under some build configurations).
vet:
	$(GO) vet ./...
	$(GO) vet -unreachable -unusedresult ./...

fmt:
	gofmt -l -w .

# Fail if any file needs reformatting (CI gate; `make fmt` fixes).
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	@echo "gofmt clean"

# Repo-specific static analysis: squatvet enforces the determinism,
# metric-naming, transport, retry-convention, lock-hygiene, hot-path
# (intra- and interprocedural via the whole-repo call graph),
# goroutine-lifecycle and error-flow invariants against the committed
# squatvet.baseline. Fails on any fresh finding; -time prints the
# package count and per-analyzer wall time (plus the one-time call-graph
# construction) to stderr.
lint:
	$(GO) run ./cmd/squatvet -time ./...

# List every analyzer with the invariant it guards.
lint-list:
	$(GO) run ./cmd/squatvet -list

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Race detector + vet across the whole tree (CI gate for the concurrent
# paths: obs registry/spans, crawler pool, DNS server/prober, sharded
# store, scan/score pools). The race detector is 5-20x slower than native;
# the heavyweight packages (core, experiments) need more than the default
# 10m per-package budget on small machines.
race: chaos
	$(GO) vet ./...
	$(GO) test -race -timeout 45m ./...

# Deterministic chaos suite: drives the crawler, DNS prober, and whois
# client through seeded fault injection (internal/faultx) under the race
# detector. Fault plans are pure functions of (seed, key, attempt), so the
# tests assert exact counter values and identical snapshots at any worker
# count; the seed matrix is fixed inside the test files. Runs first in the
# `race` gate so resilience regressions fail fast.
chaos: lint
	$(GO) test -race -count=1 -timeout 10m \
		./internal/faultx ./internal/retry ./internal/crawler \
		./internal/dnsx ./internal/whois ./internal/serve

# Root benchmarks (paper artifacts + the parallel scan/score/fit spine),
# then the scan sweep artifact: ns/op and records/sec at 1, NumCPU/2 and
# NumCPU workers with a serial-equivalence check, written to BENCH_scan.json.
bench:
	$(GO) test -bench=. -benchmem .
	$(GO) run ./cmd/scanbench -out BENCH_scan.json

# Benchmarks across every package (slow).
bench-all:
	$(GO) test -bench=. -benchmem ./...

# Zero-allocation gate for the scan hot loop: the matcher miss path must
# report 0 allocs/op. TestMatchMissZeroAlloc(+Instrumented) pin it with
# testing.AllocsPerRun; the benchmark pass re-measures with -benchmem and
# fails on any "N allocs/op" line with N > 0. hotalloc (make lint) is the
# static half of the same contract.
bench-check:
	$(GO) test -run '^TestMatchMissZeroAlloc' -count=1 ./internal/squat
	@out=$$($(GO) test -run '^$$' -bench '^BenchmarkMatchMiss' -benchmem ./internal/squat); \
	echo "$$out"; \
	if echo "$$out" | awk '/allocs\/op/ && $$(NF-1) + 0 > 0 { bad = 1 } END { exit !bad }'; then \
		echo "bench-check: miss path allocates (>0 allocs/op)"; exit 1; fi
	@echo "bench-check: miss path at 0 allocs/op"

# Short fuzz campaigns on the parser-facing packages. Each invocation
# anchors a single target (go test allows only one -fuzz match per run).
fuzz: fuzz-smoke

fuzz-smoke:
	$(GO) test -fuzz '^FuzzExtract$$' -fuzztime 30s ./internal/htmlx/
	$(GO) test -fuzz '^FuzzAnalyze$$' -fuzztime 30s ./internal/jsx/
	$(GO) test -fuzz '^FuzzUnpack$$' -fuzztime 30s ./internal/dnsx/
	$(GO) test -fuzz '^FuzzParseZone$$' -fuzztime 30s ./internal/dnsx/
	$(GO) test -fuzz '^FuzzDecode$$' -fuzztime 30s ./internal/punycode/
	$(GO) test -fuzz '^FuzzEncodeRoundTrip$$' -fuzztime 30s ./internal/punycode/
	$(GO) test -fuzz '^FuzzToUnicode$$' -fuzztime 30s ./internal/punycode/
	$(GO) test -fuzz '^FuzzSkeleton$$' -fuzztime 30s ./internal/confusables/
	$(GO) test -fuzz '^FuzzFold$$' -fuzztime 30s ./internal/confusables/
	$(GO) test -fuzz '^FuzzSkeletonParity$$' -fuzztime 30s ./internal/confusables/
	$(GO) test -fuzz '^FuzzMatchBytesParity$$' -fuzztime 30s ./internal/squat/
	$(GO) test -fuzz '^FuzzScoreBytes$$' -fuzztime 30s ./internal/domlm/
	$(GO) test -fuzz '^FuzzModelDecode$$' -fuzztime 30s ./internal/domlm/
	$(GO) test -fuzz '^FuzzOpenBytes$$' -fuzztime 30s ./internal/snapfmt/

# Per-package coverage with a floor: the detection spine (dnsx store +
# codec, squat matcher, core pipeline, deltascan cache) and the squatvet
# analysis driver + call graph must each keep at least COVER_FLOOR%
# statement coverage; internal/analysis itself is held to the higher
# COVER_FLOOR_ANALYSIS so the analyzer suite cannot silently decay.
COVER_PKGS = ./internal/dnsx ./internal/squat ./internal/core ./internal/deltascan ./internal/analysis ./internal/analysis/callgraph ./internal/domlm
COVER_FLOOR = 60
COVER_FLOOR_ANALYSIS = 85.5

cover:
	$(GO) test -cover $(COVER_PKGS) | tee cover_output.txt
	@awk -v floor=$(COVER_FLOOR) -v afloor=$(COVER_FLOOR_ANALYSIS) ' \
		/coverage:/ { \
			pct = $$0; sub(/.*coverage: /, "", pct); sub(/%.*/, "", pct); \
			f = floor; if ($$2 == "squatphi/internal/analysis") f = afloor; \
			if (pct + 0 < f) { printf "coverage floor violated: %s at %s%% (floor %s%%)\n", $$2, pct, f; bad = 1 } \
		} END { exit bad }' cover_output.txt
	@echo "coverage floors $(COVER_FLOOR)% / $(COVER_FLOOR_ANALYSIS)% (internal/analysis) held"

# Serving-path smoke: boot squatd on a generated snapshot bound to an
# ephemeral loopback port, answer a self-lookup and the health check,
# then exit through the full graceful-shutdown path (listener drain →
# delta-state spill → metrics flush). Exercises boot scan, shard warm,
# HTTP serving, signal handling and atomic persistence in one command.
serve-smoke:
	@tmp=$$(mktemp -d); \
	$(GO) run ./cmd/squatd -gen 20000 -addr 127.0.0.1:0 \
		-state $$tmp/squatd.spill.gz -metrics $$tmp/metrics.json \
		-smoke paypal.com facebook.com; rc=$$?; \
	rm -rf $$tmp; exit $$rc

# Provenance golden: one serial pipeline run must reproduce the pinned
# verdict-provenance record (testdata/golden_provenance.json) byte for
# byte. Regenerate with: go test -run TestGoldenProvenance -update .
provenance-check:
	$(GO) test -run '^TestGoldenProvenance$$' -count=1 .

# Full verification chain: build, vet, formatting, static analysis,
# tests (including the golden end-to-end pipeline), the zero-alloc scan
# gate, coverage floors, the provenance golden, the serving-path smoke,
# and the fuzz smoke campaign.
verify: build vet fmt-check lint test bench-check cover provenance-check serve-smoke fuzz-smoke

# Regenerate every paper table and figure.
paperbench:
	$(GO) run ./cmd/paperbench | tee paperbench_output.txt

# End-to-end pipeline demo.
pipeline:
	$(GO) run ./cmd/squatphi -domains 4000 -phish 400

clean:
	rm -f test_output.txt bench_output.txt cover_output.txt BENCH_scan.json
