package squatphi

import (
	"context"
	"strings"
	"testing"

	"squatphi/internal/core"
	"squatphi/internal/features"
	"squatphi/internal/ocr"
	"squatphi/internal/render"
	"squatphi/internal/squat"
	"squatphi/internal/webworld"
)

// TestPipelineSmoke runs the whole system end to end on a tiny world:
// build → DNS scan → ground truth → train → detect. It asserts only the
// coarse contracts; the calibrated shape checks live in internal/core and
// internal/experiments.
func TestPipelineSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline is slow")
	}
	p, err := core.New(core.Config{
		World:           webworld.Config{SquattingDomains: 800, NonSquattingPhish: 150, Seed: 5},
		DNSNoiseRecords: 2000,
		ForestTrees:     10,
		Seed:            6,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	ctx := context.Background()

	cands := p.ScanDNS()
	if len(cands) == 0 {
		t.Fatal("DNS scan found nothing")
	}
	gt, err := p.BuildGroundTruth(ctx, 150)
	if err != nil {
		t.Fatal(err)
	}
	pos, neg := gt.Counts()
	if pos == 0 || neg == 0 {
		t.Fatalf("degenerate ground truth: %d/%d", pos, neg)
	}
	clf := p.TrainClassifier(gt, features.AllFeatures())
	if clf.Eval.AUC < 0.7 {
		t.Fatalf("AUC = %.3f on tiny world, want > 0.7", clf.Eval.AUC)
	}
	det, err := p.DetectInWild(ctx, clf, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Every flag must reference a scanned candidate.
	candidateSet := map[string]bool{}
	for _, c := range cands {
		candidateSet[c.Domain] = true
	}
	for _, f := range append(det.FlaggedWeb, det.FlaggedMobile...) {
		if !candidateSet[f.Domain] {
			t.Fatalf("flagged %s is not a scanned candidate", f.Domain)
		}
	}
}

// TestPublicAPIWalkthrough mirrors examples/quickstart as a test, keeping
// the README's advertised flows compiling and correct.
func TestPublicAPIWalkthrough(t *testing.T) {
	gen := squat.NewGenerator()
	cands := gen.Generate(squat.NewBrand("paypal.com"))
	if len(cands) < 100 {
		t.Fatalf("only %d candidates", len(cands))
	}
	m := squat.NewMatcher([]squat.Brand{squat.NewBrand("paypal.com")})
	if c, ok := m.Match("paypal-cash.com"); !ok || c.Type != squat.Combo {
		t.Fatalf("Match = %+v, %v", c, ok)
	}

	// OCR recovers a brand that exists only in image pixels.
	html := `<html><body><img src="/l.png"><form><input type=password placeholder="Password"></form></body></html>`
	shot := render.Screenshot(html, render.Options{Assets: map[string]string{"/l.png": "PayPal"}})
	var e ocr.Engine
	if text := strings.ToLower(e.Recognize(shot)); !strings.Contains(text, "paypal") {
		t.Fatalf("OCR text %q missing brand", text)
	}
}
