module squatphi

go 1.22
